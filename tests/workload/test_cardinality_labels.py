"""Per-operator cardinality labels in the corpus schema (record v2)."""

import pickle

import numpy as np
import pytest

from repro.errors import FeaturizationError, WorkloadError
from repro.featurize import CardinalitySource
from repro.plans.plan import walk_plan
from repro.workload import (
    RECORD_SCHEMA_VERSION,
    ExecutedQueryRecord,
    WorkloadRunner,
    WorkloadSpec,
    generate_workload,
)
from repro.workload.corpus import TrainingCorpus


@pytest.fixture(scope="module")
def executed(small_synthetic_db):
    runner = WorkloadRunner(small_synthetic_db, seed=9)
    return runner.run(generate_workload(
        small_synthetic_db, WorkloadSpec(num_queries=12, seed=9)))


class TestRecordSchema:
    def test_schema_version_bumped(self):
        assert RECORD_SCHEMA_VERSION >= 2

    def test_runner_records_operator_cardinalities(self, executed):
        for record in executed:
            cards = record.operator_cardinalities
            assert len(cards) == record.plan.num_nodes
            # Pre-order alignment with the executor's annotations.
            expected = [float(node.actual_rows)
                        for node in walk_plan(record.plan.root)]
            assert list(cards) == expected
            assert all(c >= 0 for c in cards)

    def test_labels_survive_reset_actuals(self, executed):
        record = pickle.loads(pickle.dumps(executed[0]))
        record.plan.reset_actuals()
        assert record.operator_cardinalities  # the schema field remains

    def test_pickle_round_trip_preserves_labels(self, executed):
        clone = pickle.loads(pickle.dumps(executed[0]))
        assert clone.operator_cardinalities == \
            executed[0].operator_cardinalities


class TestCorpusFeaturize:
    @pytest.fixture()
    def corpus(self, small_synthetic_db, executed):
        corpus = TrainingCorpus()
        corpus.records_by_database[small_synthetic_db.name] = list(executed)
        corpus.databases[small_synthetic_db.name] = small_synthetic_db
        return corpus

    def test_with_cardinalities_labels_every_graph(self, corpus, executed):
        graphs = corpus.featurize(CardinalitySource.ESTIMATED,
                                  with_cardinalities=True)
        assert len(graphs) == len(executed)
        for graph, record in zip(graphs, executed):
            cards = graph.target_log_cardinalities
            assert cards is not None
            np.testing.assert_allclose(
                cards, np.log1p(record.operator_cardinalities))
            assert graph.target_log_runtime is not None

    def test_without_cardinalities_unchanged(self, corpus):
        graphs = corpus.featurize(CardinalitySource.ESTIMATED)
        assert all(g.target_log_cardinalities is None for g in graphs)

    def test_legacy_records_rejected_with_hint(self, corpus,
                                              small_synthetic_db, executed):
        legacy = ExecutedQueryRecord(
            query=executed[0].query, plan=executed[0].plan,
            runtime_seconds=executed[0].runtime_seconds,
            database_name=executed[0].database_name,
        )
        corpus.records_by_database[small_synthetic_db.name] = [legacy]
        with pytest.raises(WorkloadError, match="re-collect"):
            corpus.featurize(CardinalitySource.ESTIMATED,
                             with_cardinalities=True)

    def test_corpus_format_rejects_old_layout(self, corpus, tmp_path):
        corpus.save(tmp_path / "corpus")
        manifest = (tmp_path / "corpus" / "manifest.json")
        manifest.write_text(
            manifest.read_text().replace('"format": 3', '"format": 2'))
        with pytest.raises(WorkloadError, match="unsupported corpus format"):
            TrainingCorpus.load(tmp_path / "corpus")

    def test_save_load_round_trips_labels(self, corpus, tmp_path,
                                          small_synthetic_db, executed):
        corpus.save(tmp_path / "corpus")
        loaded = TrainingCorpus.load(tmp_path / "corpus")
        restored = loaded.records_by_database[small_synthetic_db.name]
        assert [r.operator_cardinalities for r in restored] == \
            [r.operator_cardinalities for r in executed]


class TestFeaturizerLabels:
    def test_length_mismatch_rejected(self, small_synthetic_db, executed):
        from repro.featurize import ZeroShotFeaturizer
        featurizer = ZeroShotFeaturizer(CardinalitySource.ESTIMATED)
        with pytest.raises(FeaturizationError, match="cardinality labels"):
            featurizer.featurize(executed[0].plan, small_synthetic_db,
                                 operator_cardinalities=[1.0])

    def test_negative_labels_rejected(self, small_synthetic_db, executed):
        from repro.featurize import ZeroShotFeaturizer
        featurizer = ZeroShotFeaturizer(CardinalitySource.ESTIMATED)
        cards = [-1.0] * executed[0].plan.num_nodes
        with pytest.raises(FeaturizationError, match="non-negative"):
            featurizer.featurize(executed[0].plan, small_synthetic_db,
                                 operator_cardinalities=cards)
