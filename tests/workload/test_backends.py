"""Sharded corpus collection: backends, shard seeds, pickling.

The process-pool backend only works if (a) every shard is a
self-contained picklable unit, (b) executed records survive the pickle
round-trip losslessly, and (c) per-shard seeds make execution order
irrelevant.  Each property gets its own regression here; the capstone
asserts serial and parallel corpora are record-identical.
"""

import os
import pickle

import pytest

from repro.db import generate_training_database_specs
from repro.errors import ExperimentError, WorkloadError
from repro.workload import (
    ProcessPoolBackend,
    SerialBackend,
    WorkloadRunner,
    WorkloadSpec,
    collect_training_corpus_from_specs,
    execute_shard,
    make_benchmark_workload,
    make_corpus_shards,
    resolve_backend,
)
from repro.workload.backends import shard_seeds


@pytest.fixture(scope="module")
def tiny_specs():
    return generate_training_database_specs(3, base_seed=23,
                                            min_rows=200, max_rows=900)


def assert_records_identical(a, b):
    """Bit-level equality of two executed-record lists."""
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert str(left.query) == str(right.query)
        assert left.database_name == right.database_name
        assert left.runtime_seconds == right.runtime_seconds
        assert left.memory_peak_bytes == right.memory_peak_bytes
        assert left.io_pages == right.io_pages
        left_nodes = left.plan.nodes()
        right_nodes = right.plan.nodes()
        assert len(left_nodes) == len(right_nodes)
        for node_a, node_b in zip(left_nodes, right_nodes):
            assert type(node_a) is type(node_b)
            assert node_a.actual_rows == node_b.actual_rows
            assert node_a.est_rows == node_b.est_rows
            assert node_a.est_cost == node_b.est_cost


class TestRecordPickling:
    """``ExecutedQueryRecord`` must round-trip losslessly — the
    process-pool backend ships every record through pickle."""

    def test_roundtrip_is_lossless(self, tiny_imdb):
        queries = make_benchmark_workload(tiny_imdb, "job-light", 6, seed=3)
        records = WorkloadRunner(tiny_imdb, seed=5).run(queries)
        restored = pickle.loads(pickle.dumps(records))
        assert_records_identical(records, restored)
        for record in restored:
            assert record.plan.is_executed
            assert record.optimizer_cost > 0

    def test_shard_and_execution_roundtrip(self, tiny_specs):
        shards = make_corpus_shards(tiny_specs, 5, seed=23)
        restored = pickle.loads(pickle.dumps(shards))
        assert restored == shards          # frozen dataclasses: full equality
        execution = execute_shard(shards[0])
        again = pickle.loads(pickle.dumps(execution))
        assert again.database.name == execution.database.name
        assert again.shard == execution.shard
        assert_records_identical(execution.records, again.records)


class TestShardSeeds:
    def test_deterministic_and_distinct(self):
        assert shard_seeds(7, 0) == shard_seeds(7, 0)
        assert shard_seeds(7, 0) != shard_seeds(7, 1)
        assert shard_seeds(7, 0) != shard_seeds(8, 0)

    def test_independent_of_fleet_size(self, tiny_specs):
        """Shard i's task is identical whether the fleet has 2 or 3
        databases — the foundation of incremental shard reuse."""
        small = make_corpus_shards(tiny_specs[:2], 5, seed=23)
        large = make_corpus_shards(tiny_specs, 5, seed=23)
        assert large[:2] == small

    def test_negative_seed_rejected(self):
        with pytest.raises(ExperimentError):
            shard_seeds(-1, 0)

    def test_workload_template_preserved(self, tiny_specs):
        template = WorkloadSpec(num_queries=1, max_tables=2,
                                max_predicates=1, seed=0)
        shards = make_corpus_shards(tiny_specs, 5, seed=23,
                                    workload_spec=template)
        for index, shard in enumerate(shards):
            assert shard.workload_spec.max_tables == 2
            assert shard.workload_spec.max_predicates == 1
            assert shard.workload_spec.num_queries == 5
            assert shard.workload_spec.seed == shard_seeds(23, index)[1]


class TestBackends:
    def test_serial_and_parallel_are_record_identical(self, tiny_specs):
        """The acceptance property: the corpus does not depend on the
        backend that collected it."""
        kwargs = dict(seed=23, random_indexes_per_database=1)
        serial = collect_training_corpus_from_specs(
            tiny_specs, 8, backend=SerialBackend(), **kwargs)
        parallel = collect_training_corpus_from_specs(
            tiny_specs, 8, backend=ProcessPoolBackend(2), **kwargs)
        assert list(serial.records_by_database) == \
            list(parallel.records_by_database)
        for name in serial.records_by_database:
            assert_records_identical(serial.records_by_database[name],
                                     parallel.records_by_database[name])
            assert sorted(serial.databases[name].indexes) == \
                sorted(parallel.databases[name].indexes)

    def test_empty_shard_list(self):
        assert SerialBackend().run([]) == []
        assert ProcessPoolBackend(2).run([]) == []

    def test_invalid_worker_count(self):
        with pytest.raises(ExperimentError):
            ProcessPoolBackend(0)
        with pytest.raises(ExperimentError):
            resolve_backend(workers=-2)

    def test_spec_validation(self, tiny_specs):
        with pytest.raises(WorkloadError):
            collect_training_corpus_from_specs([], 5)
        with pytest.raises(WorkloadError):
            collect_training_corpus_from_specs(tiny_specs, 0)


class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert isinstance(resolve_backend(), SerialBackend)

    def test_env_selects_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        backend = resolve_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 3

    def test_env_one_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert isinstance(resolve_backend(), SerialBackend)

    def test_explicit_args_win_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert isinstance(resolve_backend(workers=1), SerialBackend)
        sentinel = SerialBackend()
        assert resolve_backend(workers=4, backend=sentinel) is sentinel

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ExperimentError):
            resolve_backend()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ExperimentError):
            resolve_backend()
