"""The package's public API surface: imports, __all__, docstrings."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = ["repro.db", "repro.sql", "repro.plans", "repro.engine",
               "repro.optimizer", "repro.optimizer.learned_cardinality",
               "repro.runtime", "repro.nn",
               "repro.featurize", "repro.models", "repro.models.api",
               "repro.models.cardinality",
               "repro.workload", "repro.tuning", "repro.tuning.hardware",
               "repro.serve", "repro.serve.server",
               "repro.experiments", "repro.experiments.hardware"]


class TestApiSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_imports_and_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_error_hierarchy(self):
        from repro import errors
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, errors.ReproError)

    def test_readme_quickstart_names_exist(self):
        """Names used in README snippets must exist in the public API."""
        for name in ("CardinalitySource", "ZeroShotCostModel",
                     "ZeroShotFeaturizer", "collect_training_corpus",
                     "generate_training_databases", "make_imdb_database",
                     "make_benchmark_workload", "WorkloadRunner"):
            assert hasattr(repro, name)
