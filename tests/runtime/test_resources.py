"""Resource accounting in the simulator (§4.3 extension)."""

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.errors import WorkloadError
from repro.optimizer import plan_query
from repro.optimizer.planner import PlannerOptions
from repro.runtime import RuntimeSimulator
from repro.sql import parse_query
from repro.workload import WorkloadRunner, make_benchmark_workload


def trace(db, text, options=None):
    plan = plan_query(db, parse_query(text), options)
    execute_plan(db, plan)
    return RuntimeSimulator(db, noise_sigma=0.0).simulate(plan)


class TestResourceAccounting:
    def test_hash_join_uses_memory(self, tiny_imdb):
        runtime = trace(
            tiny_imdb,
            "SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id",
            PlannerOptions(enable_mergejoin=False, enable_nestloop=False),
        )
        assert runtime.memory_peak_bytes > 0

    def test_seq_scan_reads_pages(self, tiny_imdb):
        runtime = trace(tiny_imdb, "SELECT COUNT(*) FROM cast_info ci")
        assert runtime.io_pages > 0

    def test_bigger_build_more_memory(self, tiny_imdb):
        options = PlannerOptions(enable_mergejoin=False, enable_nestloop=False)
        small = trace(tiny_imdb, (
            "SELECT COUNT(*) FROM title t, movie_info_idx mi "
            "WHERE t.id = mi.movie_id AND t.production_year > 2020"
        ), options)
        large = trace(tiny_imdb, (
            "SELECT COUNT(*) FROM title t, cast_info ci "
            "WHERE t.id = ci.movie_id"
        ), options)
        assert large.memory_peak_bytes > small.memory_peak_bytes

    def test_records_carry_resources(self, tiny_imdb):
        queries = make_benchmark_workload(tiny_imdb, "scale", 5, seed=3)
        records = WorkloadRunner(tiny_imdb, seed=3).run(queries)
        assert all(r.io_pages >= 0 for r in records)
        assert any(r.memory_peak_bytes > 0 for r in records)


class TestCorpusResourceTargets:
    def test_featurize_targets(self, tiny_imdb):
        from repro.db import generate_training_databases
        from repro.featurize import CardinalitySource
        from repro.workload import collect_training_corpus

        databases = generate_training_databases(1, base_seed=9,
                                                min_rows=300, max_rows=1_500)
        corpus = collect_training_corpus(databases, 10, seed=1)
        runtime_graphs = corpus.featurize(CardinalitySource.ACTUAL,
                                          target="runtime")
        memory_graphs = corpus.featurize(CardinalitySource.ACTUAL,
                                         target="memory")
        io_graphs = corpus.featurize(CardinalitySource.ACTUAL, target="io")
        assert len(runtime_graphs) == len(memory_graphs) == len(io_graphs)
        # Labels differ between targets.
        runtime_labels = [g.target_log_runtime for g in runtime_graphs]
        memory_labels = [g.target_log_runtime for g in memory_graphs]
        assert not np.allclose(runtime_labels, memory_labels)
        with pytest.raises(WorkloadError):
            corpus.featurize(CardinalitySource.ACTUAL, target="nope")
