"""Runtime simulator: monotonicity, noise, operator sensitivity."""

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.errors import PlanError
from repro.optimizer import plan_query
from repro.optimizer.planner import PlannerOptions
from repro.runtime import QueryRuntime, RuntimeSimulator, SystemParameters
from repro.sql import parse_query


def simulate(db, text, seed=0, options=None, noise=0.0):
    plan = plan_query(db, parse_query(text), options)
    execute_plan(db, plan)
    simulator = RuntimeSimulator(db, noise_sigma=noise,
                                 rng=np.random.default_rng(seed))
    return simulator.simulate(plan), plan


class TestBasicProperties:
    def test_positive_and_overhead_bounded(self, tiny_imdb):
        runtime, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM title t")
        assert runtime.total_seconds > SystemParameters().query_overhead_s

    def test_unexecuted_plan_rejected(self, tiny_imdb):
        plan = plan_query(tiny_imdb, parse_query("SELECT COUNT(*) FROM title t"))
        simulator = RuntimeSimulator(tiny_imdb)
        with pytest.raises(PlanError):
            simulator.simulate(plan)

    def test_deterministic_without_noise(self, tiny_imdb):
        a, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM title t", noise=0.0)
        b, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM title t", noise=0.0)
        assert a.total_seconds == b.total_seconds

    def test_noise_is_multiplicative_and_seeded(self, tiny_imdb):
        a, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM title t",
                        seed=1, noise=0.1)
        b, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM title t",
                        seed=1, noise=0.1)
        c, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM title t",
                        seed=2, noise=0.1)
        assert a.total_seconds == b.total_seconds
        assert a.total_seconds != c.total_seconds
        assert a.noise_factor != 1.0

    def test_negative_noise_rejected(self, tiny_imdb):
        with pytest.raises(ValueError):
            RuntimeSimulator(tiny_imdb, noise_sigma=-0.1)

    def test_node_seconds_recorded(self, tiny_imdb):
        runtime, plan = simulate(
            tiny_imdb,
            "SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id",
        )
        assert isinstance(runtime, QueryRuntime)
        for node in plan.nodes():
            assert runtime.seconds_for(node) >= 0.0


class TestMonotonicity:
    def test_bigger_join_takes_longer(self, tiny_imdb):
        small, _ = simulate(tiny_imdb, (
            "SELECT COUNT(*) FROM title t, movie_info_idx mi "
            "WHERE t.id = mi.movie_id AND t.production_year > 2020"
        ))
        large, _ = simulate(tiny_imdb, (
            "SELECT COUNT(*) FROM title t, cast_info ci "
            "WHERE t.id = ci.movie_id"
        ))
        assert large.total_seconds > small.total_seconds

    def test_more_predicates_cost_cpu(self, tiny_imdb):
        base, _ = simulate(tiny_imdb, "SELECT COUNT(*) FROM cast_info ci")
        filtered, _ = simulate(tiny_imdb, (
            "SELECT COUNT(*) FROM cast_info ci WHERE ci.role_id = 1 "
            "AND ci.nr_order < 5 AND ci.person_id < 1000"
        ))
        assert filtered.total_seconds > base.total_seconds * 0.9

    def test_scale_increases_runtime(self):
        from repro.db import make_imdb_database
        small_db = make_imdb_database(scale=0.02, seed=1)
        big_db = make_imdb_database(scale=0.2, seed=1)
        text = ("SELECT COUNT(*) FROM title t, cast_info ci "
                "WHERE t.id = ci.movie_id")
        small, _ = simulate(small_db, text)
        big, _ = simulate(big_db, text)
        assert big.total_seconds > small.total_seconds * 2


class TestOperatorSensitivity:
    def test_join_strategies_have_distinct_runtimes(self, tiny_imdb):
        """Different physical operators must produce different runtimes —
        otherwise there is nothing for the model to learn from operator
        types."""
        text = ("SELECT COUNT(*) FROM title t, cast_info ci "
                "WHERE t.id = ci.movie_id AND t.production_year > 2010")
        runtimes = {}
        for name, options in {
            "hash": PlannerOptions(enable_mergejoin=False, enable_nestloop=False),
            "merge": PlannerOptions(enable_hashjoin=False, enable_nestloop=False),
        }.items():
            runtime, _ = simulate(tiny_imdb, text, options=options)
            runtimes[name] = runtime.total_seconds
        assert runtimes["hash"] != runtimes["merge"]

    def test_system_parameters_matter(self, tiny_imdb):
        plan = plan_query(tiny_imdb, parse_query(
            "SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id"
        ))
        execute_plan(tiny_imdb, plan)
        default = RuntimeSimulator(tiny_imdb, noise_sigma=0.0).simulate(plan)
        fast = RuntimeSimulator(tiny_imdb, system=SystemParameters.faster_cpu(),
                                noise_sigma=0.0).simulate(plan)
        assert fast.total_seconds < default.total_seconds

    def test_miss_fraction_behaviour(self):
        system = SystemParameters()
        assert system.miss_fraction(10) == pytest.approx(
            system.hot_miss_fraction)
        assert system.miss_fraction(100_000) > 0.9
        # An empty table has no pages to miss on.
        assert system.miss_fraction(0) == 0.0

    def test_probe_cost_cache_thrash(self):
        system = SystemParameters()
        small = system.probe_cost(1_000)
        large = system.probe_cost(1_000_000)
        assert large > small


class TestRuntimeVsOptimizerCost:
    def test_runtime_correlates_with_cost_but_not_perfectly(self, tiny_imdb):
        """Optimizer cost should be informative (correlation) yet not a
        perfect predictor (otherwise the Scaled-Optimizer-Cost baseline
        would be unbeatable, contradicting the paper)."""
        texts = [
            "SELECT COUNT(*) FROM title t",
            "SELECT COUNT(*) FROM title t WHERE t.id < 50",
            "SELECT COUNT(*) FROM cast_info ci",
            "SELECT COUNT(*) FROM title t, cast_info ci WHERE t.id = ci.movie_id",
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE t.id = mk.movie_id AND t.production_year > 2015",
            "SELECT MIN(t.rating) FROM title t, movie_info mi "
            "WHERE t.id = mi.movie_id AND mi.info_type_id = 2",
        ]
        costs, runtimes = [], []
        for text in texts:
            runtime, plan = simulate(tiny_imdb, text)
            costs.append(plan.total_cost)
            runtimes.append(runtime.total_seconds)
        correlation = np.corrcoef(np.log(costs), np.log(runtimes))[0, 1]
        assert correlation > 0.5
        # Not a perfect linear relation in log space.
        residual = np.polyfit(np.log(costs), np.log(runtimes), 1, full=True)[1]
        assert residual[0] > 1e-4
