"""The hardware axis: system-config registry, resource-model
regressions, and cost monotonicity across machines."""

from dataclasses import replace

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.errors import ExecutionError
from repro.optimizer import plan_query
from repro.plans.operators import HashAggregate
from repro.runtime import (
    RuntimeSimulator,
    SystemParameters,
    available_system_configs,
    get_system_config,
    load_system_config,
    register_system_config,
    reset_system_configs,
    save_system_config,
)
from repro.sql import parse_query

pytestmark = pytest.mark.hardware


def simulate(db, text, system=None):
    plan = plan_query(db, parse_query(text))
    execute_plan(db, plan)
    simulator = RuntimeSimulator(db, system=system or SystemParameters(),
                                 noise_sigma=0.0)
    return simulator.simulate(plan), plan


# ----------------------------------------------------------------------
# miss_fraction regression: empty tables read nothing.
# ----------------------------------------------------------------------
class TestMissFraction:
    def test_empty_table_misses_nothing(self):
        system = SystemParameters()
        assert system.miss_fraction(0.0) == 0.0
        assert system.miss_fraction(-1.0) == 0.0

    def test_small_table_pays_only_hot_misses(self):
        system = SystemParameters()
        pages = system.buffer_pool_pages * 0.5
        assert system.miss_fraction(pages) == system.hot_miss_fraction

    def test_large_table_mostly_misses(self):
        system = SystemParameters()
        assert system.miss_fraction(10_000.0) > 0.9


# ----------------------------------------------------------------------
# The system-configuration registry.
# ----------------------------------------------------------------------
class TestSystemConfigRegistry:
    def teardown_method(self):
        reset_system_configs()

    def test_builtins_registered(self):
        names = available_system_configs()
        for name in ("default", "faster-cpu", "slow-disk", "fast-disk",
                     "big-memory", "mid-range"):
            assert name in names
        assert get_system_config("default") == SystemParameters()
        assert get_system_config("mid-range") == SystemParameters.mid_range()

    def test_unknown_name_lists_available(self):
        with pytest.raises(ExecutionError, match="available:.*default"):
            get_system_config("quantum-annealer")

    def test_register_get_unregister(self):
        custom = replace(SystemParameters(), cpu_tuple_s=2e-6)
        assert register_system_config("custom", custom) is None
        assert get_system_config("custom") == custom
        # Re-registration returns the previous binding.
        assert register_system_config("custom", SystemParameters()) == custom
        # None unregisters.
        register_system_config("custom", None)
        with pytest.raises(ExecutionError):
            get_system_config("custom")

    def test_reset_restores_builtins_and_drops_customs(self):
        register_system_config("custom", SystemParameters())
        register_system_config("default", None)
        reset_system_configs()
        assert "custom" not in available_system_configs()
        assert get_system_config("default") == SystemParameters()

    def test_bad_registrations_rejected(self):
        with pytest.raises(ExecutionError):
            register_system_config("", SystemParameters())
        with pytest.raises(ExecutionError):
            register_system_config("bad", {"cpu_tuple_s": 1.0})


class TestSystemConfigSerialization:
    def test_dict_round_trip(self):
        machine = SystemParameters.slow_disk()
        assert SystemParameters.from_dict(machine.to_dict()) == machine

    def test_unknown_keys_rejected(self):
        with pytest.raises(ExecutionError, match="gpu_flops"):
            SystemParameters.from_dict({"gpu_flops": 1e12})

    def test_file_round_trip(self, tmp_path):
        machine = SystemParameters.mid_range()
        path = tmp_path / "machine.json"
        save_system_config(machine, path)
        assert load_system_config(path) == machine

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json")
        with pytest.raises(ExecutionError):
            load_system_config(path)
        with pytest.raises(ExecutionError):
            load_system_config(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Simulator resource-model regressions (the HashAggregate fixes).
# ----------------------------------------------------------------------
GROUPED = "SELECT ci.person_id, COUNT(*) FROM cast_info ci GROUP BY ci.person_id"


def _hash_aggregate(plan):
    nodes = [n for n in plan.nodes() if isinstance(n, HashAggregate)]
    assert nodes, "plan has no HashAggregate"
    return nodes[0]


class TestAggregateResourceModel:
    def test_group_table_memory_clamped_at_work_mem(self, tiny_imdb):
        small = replace(SystemParameters(), work_mem_tuples=50.0)
        plan = plan_query(tiny_imdb, parse_query(GROUPED))
        execute_plan(tiny_imdb, plan)
        node = _hash_aggregate(plan)
        simulator = RuntimeSimulator(tiny_imdb, system=small, noise_sigma=0.0)
        groups = simulator._actual(node)
        assert groups > small.work_mem_tuples  # the regression's premise
        # Clamped exactly at work_mem, like hash builds and sorts —
        # not growing linearly with the number of groups.
        assert simulator._node_memory_bytes(node) == \
            small.work_mem_tuples * (node.est_width + 48.0)

    def test_spilling_aggregate_reads_pages_and_costs_time(self, tiny_imdb):
        small = replace(SystemParameters(), work_mem_tuples=50.0)
        roomy = replace(SystemParameters(), work_mem_tuples=1e9)
        spilled, _ = simulate(tiny_imdb, GROUPED, system=small)
        in_memory, _ = simulate(tiny_imdb, GROUPED, system=roomy)
        # The group table exceeds work_mem: spill traffic shows up in
        # both the IO account and the runtime.
        assert spilled.io_pages > in_memory.io_pages
        assert spilled.total_seconds > in_memory.total_seconds
        assert spilled.memory_peak_bytes < in_memory.memory_peak_bytes


# ----------------------------------------------------------------------
# Monotonicity across machines.
# ----------------------------------------------------------------------
WORKLOAD = (
    "SELECT COUNT(*) FROM title t",
    "SELECT COUNT(*) FROM cast_info ci WHERE ci.role_id = 1",
    ("SELECT COUNT(*) FROM title t, cast_info ci "
     "WHERE t.id = ci.movie_id"),
    ("SELECT COUNT(*) FROM title t, movie_info_idx mi "
     "WHERE t.id = mi.movie_id AND t.production_year > 2000"),
    "SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id",
)


class TestCrossMachineMonotonicity:
    def test_faster_cpu_is_never_slower(self, tiny_imdb):
        """faster_cpu only lowers CPU coefficients, so no plan may get
        slower — and CPU-bound plans must get strictly faster."""
        improvements = []
        for text in WORKLOAD:
            base, _ = simulate(tiny_imdb, text)
            fast, _ = simulate(tiny_imdb, text,
                               system=SystemParameters.faster_cpu())
            assert fast.total_seconds <= base.total_seconds, text
            improvements.append(base.total_seconds - fast.total_seconds)
        assert max(improvements) > 0.0

    def test_slow_disk_never_speeds_up_hot_io(self, tiny_imdb):
        """slow_disk raises both page-read costs *and* the buffer pool;
        for tables hot in both pools the bigger pool cannot help, so no
        plan may get faster — only the per-miss cost changes."""
        for table in ("title", "cast_info", "movie_info_idx"):
            pages = tiny_imdb.table_data(table).num_pages
            # Precondition: hot in the default pool too, so slow_disk's
            # larger pool buys nothing (a mid-size table could otherwise
            # legitimately *gain* from the 1000-page pool).
            assert pages <= SystemParameters().buffer_pool_pages * 0.5, (
                f"{table} has {pages} pages; pick smaller fixtures"
            )
        slowdowns = []
        for text in WORKLOAD:
            base, _ = simulate(tiny_imdb, text)
            slow, _ = simulate(tiny_imdb, text,
                               system=SystemParameters.slow_disk())
            assert slow.total_seconds >= base.total_seconds, text
            slowdowns.append(slow.total_seconds - base.total_seconds)
        assert max(slowdowns) > 0.0

    def test_mid_range_interpolates(self):
        """The holdout machine must sit inside the training machines'
        coefficient ranges on every axis (transfer = interpolation)."""
        fleet = [get_system_config(name)
                 for name in ("default", "faster-cpu", "slow-disk",
                              "fast-disk", "big-memory")]
        holdout = get_system_config("mid-range").to_dict()
        for name, value in holdout.items():
            values = [machine.to_dict()[name] for machine in fleet]
            assert min(values) <= value <= max(values), name
