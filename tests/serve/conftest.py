"""Shared fixtures for the serving-tier suite."""

import pytest

from repro.optimizer import Planner
from repro.workload import make_benchmark_workload


@pytest.fixture(scope="package")
def serve_plans(tiny_imdb):
    """A pool of physical plans to serve (planned once, never executed)."""
    planner = Planner(tiny_imdb)
    queries = make_benchmark_workload(tiny_imdb, "scale", 16, seed=23)
    return [planner.plan(query) for query in queries]
