"""Closed-form stub estimators for the serving-tier concurrency suite.

The properties under test — cross-client batching, bit-identity under
thread interleavings, fault isolation, hot swap — are
estimator-independent, so the suite runs on deterministic stubs (no
training) and stays fast and schedule-deterministic.  Integration with
the real estimator stack is covered by ``test_service.py`` (trained
zero-shot model) and ``benchmarks/test_serving.py``.
"""

import threading

import numpy as np

from repro.errors import ModelError
from repro.models.api import CostEstimator

#: Generous upper bound on any single wait in the suite — far above
#: real latencies, far below the CI hard timeout, so a hang surfaces as
#: a test failure instead of a stuck job.
WAIT = 30.0


class LinearCostStub(CostEstimator):
    """Closed-form estimator: runtime = optimizer cost × ``scale``.

    Deterministic and batch-size invariant by construction (elementwise
    numpy ops), so served responses must match direct predictions bit
    for bit.  Distinct ``scale`` values make model versions
    distinguishable in hot-swap tests: a response's value proves which
    version answered it.
    """

    name = "linear-cost-stub"

    def __init__(self, scale: float = 1.0):
        self.scale = float(scale)

    @property
    def is_fitted(self) -> bool:
        return True

    def fit(self, records, databases, trainer=None):
        return self

    def encode_plans(self, plans, database):
        return [float(plan.total_cost) for plan in plans]

    def predict_encoded(self, encoded):
        costs = np.asarray(list(encoded), dtype=np.float64)
        return np.log(costs * self.scale)

    def save(self, directory):
        self._write_manifest(directory, {"scale": self.scale})

    @classmethod
    def load(cls, directory, database=None):
        return cls(scale=cls._read_manifest(directory)["scale"])


class GatedStub(LinearCostStub):
    """A stub whose forward blocks until the test releases it — used to
    hold the batcher busy so queue depth is controlled deterministically
    (no sleeps, no timing races)."""

    name = "gated-cost-stub"

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict_encoded(self, encoded):
        self.entered.set()
        if not self.release.wait(WAIT):  # pragma: no cover - deadlock guard
            raise ModelError("GatedStub never released")
        return super().predict_encoded(encoded)


class PoisonStub(LinearCostStub):
    """A stub that raises mid-batch whenever a poisoned plan is in the
    chunk — the fault-injection vehicle."""

    name = "poison-cost-stub"

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.poisoned: set[float] = set()

    def predict_encoded(self, encoded):
        costs = list(encoded)
        if any(cost in self.poisoned for cost in costs):
            raise ModelError("injected mid-batch estimator failure")
        return super().predict_encoded(costs)
