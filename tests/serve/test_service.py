"""The batched, caching prediction service (``repro.serve``)."""

import gc
import weakref

import numpy as np
import pytest
from serve_stubs import LinearCostStub

from repro.errors import ModelError
from repro.models import TrainerConfig, get_estimator
from repro.optimizer import Planner
from repro.serve import CostModelService
from repro.sql import parse_query
from repro.workload import WorkloadRunner, make_benchmark_workload


@pytest.fixture(scope="module")
def executed(tiny_imdb):
    runner = WorkloadRunner(tiny_imdb, seed=11)
    return runner.run(make_benchmark_workload(tiny_imdb, "scale", 24,
                                              seed=11))


@pytest.fixture(scope="module")
def estimator(tiny_imdb, executed):
    trainer = TrainerConfig(epochs=6, batch_size=16,
                            early_stopping_patience=6, seed=0)
    return get_estimator("zero-shot").fit(executed, tiny_imdb, trainer)


@pytest.fixture()
def service(estimator, tiny_imdb):
    return CostModelService(estimator, tiny_imdb, max_batch_size=8,
                            cache_entries=64)


class TestValidation:
    def test_unfitted_estimator_rejected(self, tiny_imdb):
        with pytest.raises(ModelError, match="before fit"):
            CostModelService(get_estimator("zero-shot"), tiny_imdb)

    def test_core_model_rejected(self, tiny_imdb, estimator):
        with pytest.raises(ModelError, match="CostEstimator"):
            CostModelService(estimator.model, tiny_imdb)

    def test_bad_parameters_rejected(self, tiny_imdb, estimator):
        with pytest.raises(ModelError):
            CostModelService(estimator, tiny_imdb, max_batch_size=0)
        with pytest.raises(ModelError):
            CostModelService(estimator, tiny_imdb, cache_entries=-1)


class TestPredictions:
    def test_bit_identical_to_estimator(self, service, estimator,
                                        tiny_imdb, executed):
        """Micro-batching + caching must not change a single bit —
        cold cache, warm cache, or direct estimator call."""
        plans = [r.plan for r in executed]
        reference = estimator.predict_runtime(plans, tiny_imdb)
        cold = service.predict_runtime(plans)
        warm = service.predict_runtime(plans)
        np.testing.assert_array_equal(cold, reference)
        np.testing.assert_array_equal(warm, reference)

    def test_bit_identical_to_per_plan_calls(self, service, estimator,
                                             tiny_imdb, executed):
        plans = [r.plan for r in executed[:10]]
        per_plan = np.array([estimator.predict_runtime([p], tiny_imdb)[0]
                             for p in plans])
        np.testing.assert_array_equal(service.predict_runtime(plans),
                                      per_plan)

    def test_mixed_inputs(self, service, tiny_imdb, executed):
        sql = "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990"
        items = [executed[0].plan, sql, parse_query(sql)]
        out = service.predict_runtime(items)
        assert out.shape == (3,)
        assert (out > 0).all()
        # SQL text and its parsed form plan identically.
        np.testing.assert_array_equal(out[1], out[2])

    def test_empty_batch(self, service):
        assert service.predict_runtime([]).shape == (0,)

    def test_log_runtime_consistent(self, service, executed):
        plans = [r.plan for r in executed[:5]]
        np.testing.assert_array_equal(
            np.exp(service.predict_log_runtime(plans)),
            service.predict_runtime(plans))


class TestBatchingAndCache:
    def test_micro_batch_count(self, service, executed):
        plans = [r.plan for r in executed[:20]]
        service.predict_runtime(plans)
        assert service.stats.batches == 3  # ceil(20 / 8)
        assert service.stats.requests == 20

    def test_cache_hits_on_repeat(self, service, executed):
        plans = [r.plan for r in executed[:6]]
        service.predict_runtime(plans)
        assert service.stats.cache_misses == 6
        assert service.stats.cache_hits == 0
        service.predict_runtime(plans)
        assert service.stats.cache_misses == 6
        assert service.stats.cache_hits == 6
        assert service.stats.hit_rate == 0.5

    def test_sql_requests_cached_by_text(self, service):
        sql = "SELECT COUNT(*) FROM title t WHERE t.votes > 1000"
        first = service.predict_runtime([sql])
        second = service.predict_runtime([sql])
        np.testing.assert_array_equal(first, second)
        assert service.stats.cache_hits == 1

    def test_lru_bound_and_evictions(self, estimator, tiny_imdb, executed):
        service = CostModelService(estimator, tiny_imdb, max_batch_size=8,
                                   cache_entries=4)
        plans = [r.plan for r in executed[:10]]
        service.predict_runtime(plans)
        assert service.cached_plans == 4
        assert service.stats.cache_evictions == 6

    def test_cache_disabled(self, estimator, tiny_imdb, executed):
        service = CostModelService(estimator, tiny_imdb, cache_entries=0)
        plans = [r.plan for r in executed[:3]]
        service.predict_runtime(plans)
        service.predict_runtime(plans)
        assert service.cached_plans == 0
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 6

    def test_warm_and_clear(self, service, executed):
        plans = [r.plan for r in executed[:5]]
        assert service.warm(plans) == 5
        assert service.warm(plans) == 0
        service.clear_cache()
        assert service.cached_plans == 0
        assert service.warm(plans) == 5


class TestCacheRegressions:
    """LRU regression suite: eviction order and bound, ``warm()`` hit
    accounting, and the ``_CacheEntry.source`` id-pinning guarantee.

    Runs on the closed-form stub — the cache is estimator-independent
    and these must stay cheap enough to run on every change.
    """

    def test_eviction_is_lru_not_fifo(self, tiny_imdb, serve_plans):
        service = CostModelService(LinearCostStub(), tiny_imdb,
                                   cache_entries=2)
        a, b, c = serve_plans[:3]
        service.predict_runtime([a, b])
        service.predict_runtime([a])     # touch a → b becomes the LRU
        service.predict_runtime([c])     # evicts b, not a
        assert service.stats.cache_evictions == 1
        hits = service.stats.cache_hits
        service.predict_runtime([a])
        assert service.stats.cache_hits == hits + 1      # a survived
        misses = service.stats.cache_misses
        service.predict_runtime([b])
        assert service.stats.cache_misses == misses + 1  # b was evicted

    def test_eviction_at_bound_of_one(self, tiny_imdb, serve_plans):
        service = CostModelService(LinearCostStub(), tiny_imdb,
                                   cache_entries=1)
        for plan in serve_plans[:4]:
            service.predict_runtime([plan])
        assert service.cached_plans == 1
        assert service.stats.cache_evictions == 3
        # The survivor is the most recently used entry.
        service.predict_runtime([serve_plans[3]])
        assert service.stats.cache_hits == 1

    def test_warm_hit_accounting(self, tiny_imdb, serve_plans):
        service = CostModelService(LinearCostStub(), tiny_imdb,
                                   cache_entries=64)
        plans = serve_plans[:5]
        assert service.warm(plans) == 5
        assert service.stats.cache_misses == 5
        assert service.stats.cache_hits == 0
        # Re-warming is pure hits and reports zero fresh encodes.
        assert service.warm(plans) == 0
        assert service.stats.cache_hits == 5
        # warm() never issues model forwards or counts requests.
        assert service.stats.requests == 0
        assert service.stats.batches == 0
        service.predict_runtime(plans)
        assert service.stats.cache_hits == 10
        assert service.stats.requests == 5

    def test_cache_entry_source_pins_plan_identity(self, tiny_imdb):
        """A cached plan freed by its caller must stay alive while its
        encoding is cached: identity keys (``("plan", id)``) would
        silently alias if the id were recycled by a new plan object."""
        planner = Planner(tiny_imdb)
        queries = make_benchmark_workload(tiny_imdb, "scale", 2, seed=91)
        plan = planner.plan(queries[0])
        pinned_id = id(plan)
        service = CostModelService(LinearCostStub(), tiny_imdb,
                                   cache_entries=8)
        service.warm([plan])
        ref = weakref.ref(plan)
        del plan
        gc.collect()
        # Still pinned by _CacheEntry.source...
        assert ref() is not None
        # ...so no newly allocated plan can take the cached id and
        # alias the entry: the id is provably a cache miss for it.
        other = planner.plan(queries[1])
        assert id(other) != pinned_id
        service.predict_runtime([other])
        assert service.stats.cache_hits == 0
        # The pin is released exactly when the entry is dropped.
        service.clear_cache()
        gc.collect()
        assert ref() is None

    def test_eviction_releases_the_pin(self, tiny_imdb, serve_plans):
        service = CostModelService(LinearCostStub(), tiny_imdb,
                                   cache_entries=1)
        planner = Planner(tiny_imdb)
        plan = planner.plan(make_benchmark_workload(tiny_imdb, "scale", 1,
                                                    seed=93)[0])
        service.warm([plan])
        ref = weakref.ref(plan)
        del plan
        gc.collect()
        assert ref() is not None
        service.warm([serve_plans[0]])   # evicts the pinned entry
        gc.collect()
        assert ref() is None


class TestOtherEstimators:
    @pytest.mark.parametrize("name", ("flat", "mscn", "e2e",
                                      "scaled-optimizer-cost"))
    def test_service_serves_every_registered_estimator(self, name,
                                                       tiny_imdb,
                                                       executed):
        trainer = TrainerConfig(epochs=3, batch_size=16,
                                early_stopping_patience=3, seed=0)
        estimator = get_estimator(name).fit(executed, tiny_imdb, trainer)
        service = CostModelService(estimator, tiny_imdb, max_batch_size=7)
        plans = [r.plan for r in executed[:9]]
        np.testing.assert_array_equal(
            service.predict_runtime(plans),
            estimator.predict_runtime(plans, tiny_imdb))
