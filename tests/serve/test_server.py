"""The concurrent multi-tenant front end (``repro.serve.server``).

Concurrency/SLO suite: bit-identity under real thread interleavings,
thread-safe stats accounting, fault isolation, admission control, and
the hot-swap protocol.  Every blocking wait carries an explicit
timeout, so a deadlocked server fails a test instead of hanging the
run; all randomized interleavings are seeded.  Run with
``pytest -m concurrency`` (CI adds a hard wall-clock timeout on top).
"""

import threading
import time

import numpy as np
import pytest
from serve_stubs import WAIT, GatedStub, LinearCostStub, PoisonStub

from repro.errors import ModelError, Overloaded, ServeError
from repro.models.api import register_estimator
from repro.serve import (
    CostModelService,
    PredictionServer,
    ServiceStats,
    serve_estimator,
)
from repro.serve.service import LATENCY_WINDOW

pytestmark = pytest.mark.concurrency


def make_service(tiny_imdb, scale=1.0, **kwargs):
    kwargs.setdefault("max_batch_size", 8)
    return CostModelService(LinearCostStub(scale), tiny_imdb, **kwargs)


# ----------------------------------------------------------------------
# Validation and lifecycle
# ----------------------------------------------------------------------
class TestValidationAndLifecycle:
    def test_requires_service(self):
        with pytest.raises(ServeError, match="CostModelService"):
            PredictionServer(LinearCostStub())

    def test_bad_parameters_rejected(self, tiny_imdb):
        service = make_service(tiny_imdb)
        with pytest.raises(ServeError):
            PredictionServer(service, max_batch_size=0)
        with pytest.raises(ServeError):
            PredictionServer(service, max_wait_ms=-1.0)
        with pytest.raises(ServeError):
            PredictionServer(service, max_queue_depth=0)

    def test_serve_estimator_one_call_deployment(self, tiny_imdb,
                                                 serve_plans):
        with serve_estimator(LinearCostStub(), tiny_imdb,
                             max_batch_size=4) as server:
            assert server.max_batch_size == 4
            response = server.predict_runtime(serve_plans[0], timeout=WAIT)
            assert response.model_version == "v0"
        with pytest.raises(ModelError, match="CostEstimator"):
            serve_estimator(object(), tiny_imdb)

    def test_close_drains_and_is_idempotent(self, tiny_imdb, serve_plans):
        server = PredictionServer(make_service(tiny_imdb),
                                  max_wait_ms=200.0, max_batch_size=64)
        pending = [server.submit(p) for p in serve_plans]
        # Close before the 200 ms flush deadline: the drain must answer
        # every admitted request without waiting for the batch to fill.
        server.close()
        for p in pending:
            assert p.result(WAIT).runtime > 0
        assert server.pending == 0
        assert not server.is_running
        server.close()  # idempotent
        with pytest.raises(ServeError, match="closed"):
            server.submit(serve_plans[0])
        with pytest.raises(ServeError, match="closed"):
            server.swap(LinearCostStub(2.0))

    def test_result_timeout_raises_serve_error(self, tiny_imdb,
                                               serve_plans):
        stub = GatedStub()
        service = CostModelService(stub, tiny_imdb, max_batch_size=8)
        with PredictionServer(service, max_wait_ms=0.0) as server:
            pending = server.submit(serve_plans[0])
            assert stub.entered.wait(WAIT)
            with pytest.raises(ServeError, match="not answered"):
                pending.result(timeout=0.02)
            assert not pending.done()
            stub.release.set()
            assert pending.result(WAIT).runtime > 0


# ----------------------------------------------------------------------
# Satellite 1: concurrency bit-identity + thread-safe accounting
# ----------------------------------------------------------------------
class TestConcurrencyBitIdentity:
    N_CLIENTS = 8
    ROUNDS = 5

    def test_interleaved_tenants_bit_identical(self, tiny_imdb,
                                               serve_plans):
        """N threads issue interleaved mixed-tenant requests (plans and
        SQL); every response must equal the serial single-caller
        ``CostModelService.predict_runtime`` result bit for bit, and
        the aggregate request counter must equal the sum of per-client
        counts."""
        sql = ("SELECT COUNT(*) FROM title t "
               "WHERE t.production_year > 1990")
        items = list(serve_plans) + [sql]
        reference = CostModelService(
            LinearCostStub(), tiny_imdb).predict_runtime(items)
        expected = {id(item): reference[i] for i, item in enumerate(items)}

        service = make_service(tiny_imdb)
        failures = []
        counts = {}
        with PredictionServer(service, max_wait_ms=1.0) as server:
            barrier = threading.Barrier(self.N_CLIENTS)

            def client(cid):
                rng = np.random.default_rng(cid)
                barrier.wait(WAIT)
                served = 0
                for _ in range(self.ROUNDS):
                    for index in rng.permutation(len(items)):
                        item = items[index]
                        response = server.predict_runtime(
                            item, tenant=f"tenant-{cid}", timeout=WAIT)
                        if response.runtime != expected[id(item)]:
                            failures.append((cid, index, response.runtime))
                        if response.tenant != f"tenant-{cid}":
                            failures.append((cid, "tenant", response.tenant))
                        served += 1
                counts[cid] = served

            threads = [threading.Thread(target=client, args=(cid,))
                       for cid in range(self.N_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT)
            assert not any(t.is_alive() for t in threads)

            assert not failures
            total = self.N_CLIENTS * self.ROUNDS * len(items)
            assert sum(counts.values()) == total
            # The data race a bare `+=` would lose: aggregate counters
            # must equal the sum of per-client counts exactly.
            assert server.stats.requests == total
            assert server.stats.failures == 0
            assert server.stats.rejected == 0
            assert service.stats.requests == total
            # Cross-client coalescing actually happened: far fewer
            # forwards than requests once every item is cache-warm.
            assert server.stats.batches < total
            assert server.stats.observed_latencies == min(total,
                                                          LATENCY_WINDOW)
            assert server.stats.latency_p50 <= server.stats.latency_p99

    def test_service_stats_add_is_thread_safe(self):
        """Hammer one ServiceStats from many threads: increments must
        never be lost (this is the regression for the bare `+=` race)."""
        stats = ServiceStats()
        threads = 16
        per_thread = 5_000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait(WAIT)
            for _ in range(per_thread):
                stats.add(requests=1, batches=2)
                stats.observe_latency(0.001)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(WAIT)
        assert stats.requests == threads * per_thread
        assert stats.batches == 2 * threads * per_thread
        assert stats.observed_latencies == LATENCY_WINDOW

    def test_latency_quantiles(self):
        stats = ServiceStats()
        assert np.isnan(stats.latency_p50)
        assert np.isnan(stats.latency_p99)
        for value in range(1, 101):
            stats.observe_latency(value / 1000.0)
        assert stats.latency_p50 == pytest.approx(0.0505)
        assert stats.latency_p99 == pytest.approx(0.09901)
        assert stats.latency_quantile(1.0) == pytest.approx(0.1)

    def test_bit_identity_with_registered_estimator(self, tiny_imdb):
        """Same property through a real registered estimator (the
        closed-form scaled-optimizer-cost baseline, trained on an
        executed workload)."""
        from repro.models import get_estimator
        from repro.workload import WorkloadRunner, make_benchmark_workload

        runner = WorkloadRunner(tiny_imdb, seed=31)
        executed = runner.run(
            make_benchmark_workload(tiny_imdb, "scale", 10, seed=31))
        estimator = get_estimator("scaled-optimizer-cost").fit(
            executed, tiny_imdb)
        plans = [record.plan for record in executed]
        reference = estimator.predict_runtime(plans, tiny_imdb)

        results = {}
        with serve_estimator(estimator, tiny_imdb, max_batch_size=4,
                             max_wait_ms=1.0) as server:
            def client(cid):
                results[cid] = [
                    server.predict_runtime(plan, timeout=WAIT).runtime
                    for plan in plans
                ]
            threads = [threading.Thread(target=client, args=(cid,))
                       for cid in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT)
        for served in results.values():
            np.testing.assert_array_equal(np.asarray(served), reference)


# ----------------------------------------------------------------------
# Satellite 2: fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_poisoned_batch_fails_alone(self, tiny_imdb, serve_plans):
        """An estimator error mid-batch fails exactly the requests in
        the poisoned batch with the original error; the server keeps
        serving and its accounting stays consistent."""
        stub = PoisonStub()
        poison = serve_plans[0]
        stub.poisoned.add(float(poison.total_cost))
        service = CostModelService(stub, tiny_imdb, max_batch_size=4)
        # Long max_wait so the four submitted requests deterministically
        # coalesce into one full batch before any flush.
        with PredictionServer(service, max_batch_size=4,
                              max_wait_ms=2_000.0) as server:
            victims = [server.submit(plan, tenant="victim")
                       for plan in [poison] + list(serve_plans[1:4])]
            errors = []
            for pending in victims:
                with pytest.raises(ModelError,
                                   match="injected mid-batch") as excinfo:
                    pending.result(WAIT)
                errors.append(excinfo.value)
            # Every member of the poisoned batch got the *original*
            # exception object, not a re-wrapped copy.
            assert all(error is errors[0] for error in errors)

            assert server.stats.failures == 4
            assert server.stats.requests == 0
            assert server.pending == 0
            assert server.is_running

            # The very next batch is served normally.
            survivors = [server.submit(plan, tenant="survivor")
                         for plan in serve_plans[4:8]]
            reference = CostModelService(
                LinearCostStub(), tiny_imdb).predict_runtime(
                    serve_plans[4:8])
            served = np.asarray([p.result(WAIT).runtime
                                 for p in survivors])
            np.testing.assert_array_equal(served, reference)
            assert server.stats.failures == 4
            assert server.stats.requests == 4
            assert server.stats.batches == 2
            assert server.pending == 0

    def test_unpoisoned_traffic_unaffected_after_failure(self, tiny_imdb,
                                                         serve_plans):
        stub = PoisonStub()
        stub.poisoned.add(float(serve_plans[0].total_cost))
        service = CostModelService(stub, tiny_imdb, max_batch_size=8)
        with PredictionServer(service, max_wait_ms=0.5) as server:
            with pytest.raises(ModelError):
                server.predict_runtime(serve_plans[0], timeout=WAIT)
            for _ in range(3):
                response = server.predict_runtime(serve_plans[1],
                                                  timeout=WAIT)
                assert response.runtime > 0
            assert server.stats.requests == 3
            assert server.stats.failures >= 1


# ----------------------------------------------------------------------
# Admission control / load shedding
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_overloaded_rejection_at_queue_bound(self, tiny_imdb,
                                                 serve_plans):
        """With the batcher held busy inside a forward, submissions
        beyond ``max_queue_depth`` are shed with ``Overloaded``
        immediately — and every *admitted* request is still served."""
        stub = GatedStub()
        service = CostModelService(stub, tiny_imdb, max_batch_size=8)
        with PredictionServer(service, max_wait_ms=0.0,
                              max_queue_depth=3) as server:
            first = server.submit(serve_plans[0])
            assert stub.entered.wait(WAIT)  # batcher now blocked mid-batch
            admitted = [server.submit(plan)
                        for plan in serve_plans[1:4]]  # fills the queue
            assert server.pending == 3
            with pytest.raises(Overloaded, match="back off"):
                server.submit(serve_plans[4])
            with pytest.raises(Overloaded):
                server.predict_runtime(serve_plans[5])
            assert server.stats.rejected == 2

            stub.release.set()
            for pending in [first] + admitted:
                assert pending.result(WAIT).runtime > 0
            assert server.stats.requests == 4
            assert server.pending == 0

    def test_shed_load_recovers(self, tiny_imdb, serve_plans):
        """After shedding, the server accepts traffic again as soon as
        the queue drains — rejection is stateless."""
        stub = GatedStub()
        service = CostModelService(stub, tiny_imdb, max_batch_size=8)
        with PredictionServer(service, max_wait_ms=0.0,
                              max_queue_depth=1) as server:
            first = server.submit(serve_plans[0])
            assert stub.entered.wait(WAIT)
            queued = server.submit(serve_plans[1])
            with pytest.raises(Overloaded):
                server.submit(serve_plans[2])
            stub.release.set()
            first.result(WAIT)
            queued.result(WAIT)
            assert server.predict_runtime(serve_plans[2],
                                          timeout=WAIT).runtime > 0


# ----------------------------------------------------------------------
# Satellite 3: hot model swap
# ----------------------------------------------------------------------
class TestHotSwap:
    def test_swap_estimator_and_version_tags(self, tiny_imdb, serve_plans):
        service = make_service(tiny_imdb, scale=1.0)
        reference = {
            scale: CostModelService(LinearCostStub(scale),
                                    tiny_imdb).predict_runtime(
                                        serve_plans[:1])[0]
            for scale in (1.0, 2.0)
        }
        with PredictionServer(service, max_wait_ms=0.5) as server:
            before = server.predict_runtime(serve_plans[0], timeout=WAIT)
            assert before.model_version == "v0"
            np.testing.assert_array_equal(before.runtime, reference[1.0])

            tag = server.swap(LinearCostStub(2.0))
            assert tag == "v1"
            assert server.model_version == "v1"
            after = server.predict_runtime(serve_plans[0], timeout=WAIT)
            assert after.model_version == "v1"
            np.testing.assert_array_equal(after.runtime, reference[2.0])
            assert server.stats.swaps == 1

            assert server.swap(LinearCostStub(3.0), version="canary") \
                == "canary"
            assert server.predict_runtime(
                serve_plans[0], timeout=WAIT).model_version == "canary"

    def test_swap_from_saved_manifest(self, tiny_imdb, serve_plans,
                                      tmp_path):
        """The deployment path: a newly saved estimator is hot-loaded
        from disk through the ``load_estimator`` manifests."""
        register_estimator(LinearCostStub.name, LinearCostStub)
        try:
            directory = tmp_path / "fine-tuned"
            LinearCostStub(4.0).save(directory)
            service = make_service(tiny_imdb, scale=1.0)
            reference = CostModelService(
                LinearCostStub(4.0), tiny_imdb).predict_runtime(serve_plans)
            with PredictionServer(service) as server:
                tag = server.swap(directory, warm=serve_plans)
                assert tag == f"{LinearCostStub.name}@fine-tuned"
                # The swapped-in service was warmed before installation.
                assert server.service.cached_plans == len(serve_plans)
                response = server.predict_runtime(serve_plans[0],
                                                  timeout=WAIT)
                assert response.model_version == tag
                np.testing.assert_array_equal(response.runtime,
                                              reference[0])
        finally:
            register_estimator(LinearCostStub.name, None)

    def test_swap_rejects_garbage_directory(self, tiny_imdb, serve_plans,
                                            tmp_path):
        service = make_service(tiny_imdb)
        with PredictionServer(service) as server:
            with pytest.raises(ModelError, match="saved estimator"):
                server.swap(tmp_path)  # no manifest at all
            # A manifest naming an unloadable estimator is caught by
            # peek_manifest before any weights are touched.
            LinearCostStub(2.0).save(tmp_path / "unregistered")
            with pytest.raises(ModelError, match="no registered"):
                server.swap(tmp_path / "unregistered")
            # Failed swaps leave the installed model untouched.
            assert server.model_version == "v0"
            assert server.stats.swaps == 0
            assert server.predict_runtime(serve_plans[0],
                                          timeout=WAIT).runtime > 0

    @pytest.mark.parametrize("seed", [3, 17])
    def test_hot_swap_property_under_load(self, tiny_imdb, serve_plans,
                                          seed):
        """Randomly interleave swaps with request streams: every
        response is tagged with exactly one model version (and its
        value proves the tag), no request is dropped, and no batch
        mixes versions."""
        scales = {"v0": 1.0, "v1": 2.0, "v2": 3.0, "v3": 5.0}
        expected = {}
        for version, scale in scales.items():
            direct = CostModelService(LinearCostStub(scale),
                                      tiny_imdb).predict_runtime(serve_plans)
            expected[version] = {id(plan): direct[i]
                                 for i, plan in enumerate(serve_plans)}

        n_clients, per_client = 4, 30
        service = make_service(tiny_imdb, scale=scales["v0"])
        responses = []
        responses_lock = threading.Lock()
        with PredictionServer(service, max_batch_size=8,
                              max_wait_ms=1.0) as server:
            barrier = threading.Barrier(n_clients + 1)

            def client(cid):
                rng = np.random.default_rng((seed, cid))
                barrier.wait(WAIT)
                mine = []
                for _ in range(per_client):
                    plan = serve_plans[rng.integers(len(serve_plans))]
                    mine.append((plan,
                                 server.predict_runtime(plan,
                                                        timeout=WAIT)))
                    if rng.random() < 0.2:
                        time.sleep(rng.random() / 2000.0)
                with responses_lock:
                    responses.extend(mine)

            def swapper():
                rng = np.random.default_rng((seed, 104729))
                barrier.wait(WAIT)
                for version in ["v1", "v2", "v3"]:
                    time.sleep(rng.random() / 100.0)
                    server.swap(LinearCostStub(scales[version]),
                                version=version)

            threads = [threading.Thread(target=client, args=(cid,))
                       for cid in range(n_clients)]
            threads.append(threading.Thread(target=swapper))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT)
            assert not any(t.is_alive() for t in threads)

            # Zero dropped requests.
            assert len(responses) == n_clients * per_client
            assert server.stats.requests == n_clients * per_client
            assert server.pending == 0
            assert server.stats.swaps == 3

            # Exactly one version per response, and the *value* matches
            # the tagged version bit for bit.
            batch_versions = {}
            for plan, response in responses:
                assert response.model_version in scales
                np.testing.assert_array_equal(
                    response.runtime,
                    expected[response.model_version][id(plan)])
                batch_versions.setdefault(response.batch_index,
                                          set()).add(response.model_version)
            # No batch mixes versions.
            assert all(len(versions) == 1
                       for versions in batch_versions.values())
