"""Shared fixtures: small databases reused across the test suite."""

import os

import numpy as np
import pytest

from repro.db import (
    Column,
    Database,
    DataType,
    ForeignKey,
    Schema,
    SyntheticDatabaseSpec,
    Table,
    TableData,
    generate_database,
    make_imdb_database,
)


@pytest.fixture(scope="session", autouse=True)
def _force_serial_backend():
    """Pin corpus collection to the SerialBackend for unit tests.

    An ambient ``REPRO_WORKERS`` must not switch the suite onto the
    process pool: unit tests want deterministic, single-process
    execution (tests that exercise the pool construct
    ``ProcessPoolBackend`` explicitly).
    """
    previous = os.environ.get("REPRO_WORKERS")
    os.environ["REPRO_WORKERS"] = "1"
    yield
    if previous is None:
        os.environ.pop("REPRO_WORKERS", None)
    else:
        os.environ["REPRO_WORKERS"] = previous


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the artifact store at a per-session scratch directory.

    Tier-1 runs must never read a stale user-level cache (a context
    pickled by older code could silently mask a regression), and must
    never pollute ``~/.cache/repro`` either.
    """
    scratch = tmp_path_factory.mktemp("repro-artifact-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(scratch)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def tiny_imdb():
    """A small IMDB-shaped database (≈8k rows), analyzed, with PK indexes."""
    return make_imdb_database(scale=0.04, seed=7)


@pytest.fixture(scope="session")
def small_synthetic_db():
    """One small synthetic training database."""
    spec = SyntheticDatabaseSpec(
        name="synth", seed=11, num_tables=4, min_rows=300, max_rows=2_000
    )
    return generate_database(spec)


@pytest.fixture()
def two_table_db():
    """A hand-built two-table database with known contents.

    parent(id, value): 100 rows, value = id % 10
    child(id, parent_id, amount): 500 rows, parent_id = id % 100,
    amount = id (float).
    """
    parent = Table(
        name="parent",
        columns=(Column("id", DataType.INTEGER),
                 Column("value", DataType.INTEGER)),
        primary_key="id",
    )
    child = Table(
        name="child",
        columns=(Column("id", DataType.INTEGER),
                 Column("parent_id", DataType.INTEGER),
                 Column("amount", DataType.FLOAT)),
        primary_key="id",
    )
    schema = Schema.from_tables(
        "toy", [parent, child],
        [ForeignKey("child", "parent_id", "parent", "id")],
    )
    parent_data = TableData(
        table=parent,
        columns={
            "id": np.arange(100, dtype=np.int64),
            "value": np.arange(100, dtype=np.int64) % 10,
        },
    )
    child_data = TableData(
        table=child,
        columns={
            "id": np.arange(500, dtype=np.int64),
            "parent_id": np.arange(500, dtype=np.int64) % 100,
            "amount": np.arange(500, dtype=np.float64),
        },
    )
    database = Database.from_tables(
        "toy", schema, {"parent": parent_data, "child": child_data}
    )
    database.create_index("parent_pkey", "parent", "id", unique=True)
    database.analyze()
    return database
