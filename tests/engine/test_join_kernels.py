"""Join kernels: row-identical parity with the sort-based reference,
the operator→kernel registry, and build-side caching."""

import numpy as np
import pytest

from repro.engine import (
    BuildSideCache,
    Executor,
    JoinHashTable,
    block_nested_loop_match,
    execute_plan,
    hash_join_match,
    join_kernel_for,
    merge_join_match,
    register_join_kernel,
    registered_join_kernels,
    reset_join_kernels,
    sort_merge_match,
)
from repro.errors import ExecutionError
from repro.plans import (
    HashBuild,
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    PlainAggregate,
    SeqScan,
    Sort,
)
from repro.sql.ast import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    JoinCondition,
    Query,
    TableRef,
)

KERNELS = [hash_join_match, merge_join_match, block_nested_loop_match]
KERNEL_IDS = ["hash", "merge", "block-nl"]


def assert_matches_reference(kernel, left, right):
    expected = sort_merge_match(left, right)
    actual = kernel(left, right)
    np.testing.assert_array_equal(expected[0], actual[0])
    np.testing.assert_array_equal(expected[1], actual[1])
    assert actual[0].dtype == np.int64
    assert actual[1].dtype == np.int64


class TestKernelParity:
    """Each kernel must reproduce the reference pairs in the same order."""

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_fk_pk_int_keys(self, kernel):
        rng = np.random.default_rng(0)
        build = rng.permutation(500).astype(np.int64)
        probe = rng.integers(0, 700, 2_000, dtype=np.int64)  # some misses
        # merge kernel contract: right side sorted (others ignore order)
        assert_matches_reference(kernel, probe, np.sort(build))

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_duplicate_keys_both_sides(self, kernel):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 40, 600, dtype=np.int64)
        right = np.sort(rng.integers(0, 40, 300, dtype=np.int64))
        assert_matches_reference(kernel, left, right)

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_float_keys(self, kernel):
        rng = np.random.default_rng(2)
        pool = np.round(rng.normal(size=50), 2)
        left = rng.choice(pool, 400)
        right = np.sort(rng.choice(pool, 200))
        assert_matches_reference(kernel, left, right)

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_negative_zero_matches_zero(self, kernel):
        left = np.array([0.0, -0.0, 1.0])
        right = np.array([-0.0, 0.5])
        assert_matches_reference(kernel, left, right)

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_empty_sides(self, kernel):
        empty = np.empty(0, dtype=np.int64)
        keys = np.arange(5)
        for left, right in ((empty, keys), (keys, empty), (empty, empty)):
            assert_matches_reference(kernel, left, right)

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_no_matches(self, kernel):
        left = np.arange(10, dtype=np.int64)
        right = np.arange(100, 110, dtype=np.int64)
        assert_matches_reference(kernel, left, right)

    def test_merge_kernel_unsorted_fallback(self):
        rng = np.random.default_rng(3)
        left = rng.integers(0, 30, 200, dtype=np.int64)
        right = rng.permutation(60).astype(np.int64)  # deliberately unsorted
        assert_matches_reference(merge_join_match, left, right)

    def test_hash_kernel_extreme_keys(self):
        """Hash must cope with negative ids and 64-bit magnitudes."""
        left = np.array([-5, 0, 2**62, -2**62, 7], dtype=np.int64)
        right = np.array([2**62, -5, 123], dtype=np.int64)
        assert_matches_reference(hash_join_match, left, right)

    @pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
    def test_mixed_dtype_keys(self, kernel):
        """int vs float keys must compare numerically, like searchsorted."""
        left = np.array([1, 2, 3, 4, 7], dtype=np.int64)
        right = np.array([2.0, 2.0, 4.0, 9.5])  # sorted for the merge kernel
        assert_matches_reference(kernel, left, right)
        assert_matches_reference(kernel, right, np.arange(5).astype(np.int64))


class TestJoinHashTable:
    def test_build_once_probe_many(self):
        rng = np.random.default_rng(4)
        build = rng.integers(0, 100, 500, dtype=np.int64)
        table = JoinHashTable.build(build)
        for seed in (5, 6):
            probe = np.random.default_rng(seed).integers(
                0, 120, 800, dtype=np.int64)
            expected = sort_merge_match(probe, build)
            actual = table.probe(probe)
            np.testing.assert_array_equal(expected[0], actual[0])
            np.testing.assert_array_equal(expected[1], actual[1])

    def test_unhashable_dtype_returns_none(self):
        assert JoinHashTable.build(np.array(["a", "b"])) is None

    def test_probe_dtype_contract(self):
        float_table = JoinHashTable.build(np.array([1.0, 2.0, 4.0]))
        assert float_table.accepts(np.dtype(np.int64))
        left, right = float_table.probe(np.array([2, 3], dtype=np.int64))
        np.testing.assert_array_equal(left, [0])
        np.testing.assert_array_equal(right, [1])

        int_table = JoinHashTable.build(np.array([1, 2, 4], dtype=np.int64))
        assert not int_table.accepts(np.dtype(np.float64))
        with pytest.raises(ExecutionError):
            int_table.probe(np.array([2.0, 3.0]))

    def test_empty_build(self):
        table = JoinHashTable.build(np.empty(0, dtype=np.int64))
        left, right = table.probe(np.arange(3))
        assert len(left) == 0 and len(right) == 0


class TestRegistry:
    def test_defaults(self):
        assert join_kernel_for(HashJoin) is hash_join_match
        assert join_kernel_for(MergeJoin) is merge_join_match
        assert join_kernel_for(NestedLoopJoin) is block_nested_loop_match

    def test_subclass_inherits_parent_kernel(self):
        class FancyHashJoin(HashJoin):
            pass

        assert join_kernel_for(FancyHashJoin) is hash_join_match

    def test_register_and_restore(self):
        calls = []

        def spy_kernel(left, right):
            calls.append(len(left))
            return sort_merge_match(left, right)

        previous = register_join_kernel(MergeJoin, spy_kernel)
        try:
            assert previous is merge_join_match
            assert join_kernel_for(MergeJoin) is spy_kernel
        finally:
            register_join_kernel(MergeJoin, previous)
        assert join_kernel_for(MergeJoin) is merge_join_match

    def test_executor_uses_registered_kernel(self, two_table_db):
        calls = []

        def spy_kernel(left, right):
            calls.append((len(left), len(right)))
            return sort_merge_match(left, right)

        previous = register_join_kernel(NestedLoopJoin, spy_kernel)
        try:
            plan, join = _join_plan(two_table_db, NestedLoopJoin)
            result = execute_plan(two_table_db, plan)
            assert result.scalar() == 500
            assert calls == [(100, 500)] or calls == [(500, 100)]
        finally:
            register_join_kernel(NestedLoopJoin, previous)

    def test_invalid_registration_rejected(self):
        with pytest.raises(ExecutionError):
            register_join_kernel(int, sort_merge_match)
        with pytest.raises(ExecutionError):
            register_join_kernel(HashJoin, "not callable")

    def test_new_operator_registration_restorable(self):
        """Passing back a None previous must remove the entry again."""
        class BrandNewJoin(HashJoin):
            pass

        previous = register_join_kernel(BrandNewJoin, sort_merge_match)
        assert previous is None
        assert join_kernel_for(BrandNewJoin) is sort_merge_match
        register_join_kernel(BrandNewJoin, previous)   # restore: remove
        assert join_kernel_for(BrandNewJoin) is hash_join_match  # inherited

    def test_snapshot_and_reset(self):
        snapshot = registered_join_kernels()
        assert snapshot[HashJoin] is hash_join_match
        register_join_kernel(HashJoin, sort_merge_match)
        reset_join_kernels()
        assert join_kernel_for(HashJoin) is hash_join_match


def _join_plan(db, join_class):
    condition = JoinCondition(ColumnRef("parent", "id"),
                              ColumnRef("child", "parent_id"))
    parent_scan = SeqScan(table=TableRef("parent"))
    child_scan = SeqScan(table=TableRef("child"))
    if join_class is HashJoin:
        join = HashJoin(condition=condition,
                        children=[child_scan,
                                  HashBuild(key=condition.left,
                                            children=[parent_scan])])
    elif join_class is MergeJoin:
        join = MergeJoin(
            condition=condition,
            children=[Sort(key=condition.left, children=[parent_scan]),
                      Sort(key=condition.right, children=[child_scan])],
        )
    else:
        join = NestedLoopJoin(condition=condition,
                              children=[parent_scan, child_scan])
    root = PlainAggregate(aggregates=(AggregateSpec(AggregateFunction.COUNT),),
                          children=[join])
    query = Query(tables=(TableRef("parent"), TableRef("child")))
    return PhysicalPlan(root=root, query=query, database_name=db.name), join


class TestBuildSideCache:
    def test_hit_replays_actuals_and_matches_uncached(self, two_table_db):
        cache = BuildSideCache()
        cached = Executor(two_table_db, build_cache=cache)
        plain = Executor(two_table_db)

        reference_plan, _ = _join_plan(two_table_db, HashJoin)
        plain.execute(reference_plan)

        for _ in range(3):
            plan, join = _join_plan(two_table_db, HashJoin)
            result = cached.execute(plan)
            assert result.scalar() == 500
            build_node = join.children[1]
            assert build_node.actual_rows == 100
            assert build_node.children[0].actual_rows == 100
        assert cache.hits == 2
        assert cache.misses == 1

    def test_distinct_build_sides_not_conflated(self, two_table_db):
        from repro.sql.ast import ComparisonOperator, Predicate

        cache = BuildSideCache()
        executor = Executor(two_table_db, build_cache=cache)

        plan_all, _ = _join_plan(two_table_db, HashJoin)
        assert executor.execute(plan_all).scalar() == 500

        condition = JoinCondition(ColumnRef("parent", "id"),
                                  ColumnRef("child", "parent_id"))
        filtered_parent = SeqScan(
            table=TableRef("parent"),
            filters=(Predicate(ColumnRef("parent", "id"),
                               ComparisonOperator.LT, 50.0),),
        )
        join = HashJoin(condition=condition,
                        children=[SeqScan(table=TableRef("child")),
                                  HashBuild(key=condition.left,
                                            children=[filtered_parent])])
        root = PlainAggregate(
            aggregates=(AggregateSpec(AggregateFunction.COUNT),),
            children=[join])
        query = Query(tables=(TableRef("parent"), TableRef("child")))
        plan = PhysicalPlan(root=root, query=query,
                            database_name=two_table_db.name)
        assert executor.execute(plan).scalar() == 250
        assert cache.misses == 2

    def test_cache_bound_to_one_database(self, two_table_db, tiny_imdb):
        cache = BuildSideCache()
        plan, _ = _join_plan(two_table_db, HashJoin)
        Executor(two_table_db, build_cache=cache).execute(plan)
        other = Executor(tiny_imdb, build_cache=cache)
        with pytest.raises(ExecutionError):
            other._cached_build(SeqScan(table=TableRef("title")))

    def test_lru_eviction(self):
        cache = BuildSideCache(max_entries=1)
        cache.put(("a",), object())
        cache.put(("b",), object())
        assert len(cache) == 1
        assert cache.get(("a",)) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BuildSideCache(max_entries=0)
