"""Executor correctness on hand-built plans with known answers.

The two_table_db fixture has exactly known contents:
parent.value = id % 10 (100 rows), child.parent_id = id % 100 (500 rows),
child.amount = id as float.
"""

import numpy as np
import pytest

from repro.engine import Executor, execute_plan, predicate_mask
from repro.errors import ExecutionError, PlanError
from repro.plans import (
    HashAggregate,
    HashBuild,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    PlainAggregate,
    SeqScan,
    Sort,
)
from repro.sql.ast import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    ComparisonOperator,
    JoinCondition,
    Predicate,
    Query,
    TableRef,
)


def count_star():
    return (AggregateSpec(AggregateFunction.COUNT),)


def make_plan(root, db, tables=("parent",)):
    query = Query(tables=tuple(TableRef(t) for t in tables))
    return PhysicalPlan(root=root, query=query, database_name=db.name)


def pred(table, column, op, value):
    return Predicate(ColumnRef(table, column), op, value)


class TestScans:
    def test_seq_scan_all(self, two_table_db):
        scan = SeqScan(table=TableRef("parent"))
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        assert result.scalar() == 100
        assert scan.actual_rows == 100

    def test_seq_scan_filtered(self, two_table_db):
        scan = SeqScan(
            table=TableRef("parent"),
            filters=(pred("parent", "value", ComparisonOperator.EQ, 3.0),),
        )
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        assert result.scalar() == 10  # value==3 hits ids 3,13,...,93

    def test_seq_scan_range_conjunction(self, two_table_db):
        scan = SeqScan(
            table=TableRef("child"),
            filters=(
                pred("child", "amount", ComparisonOperator.GEQ, 100.0),
                pred("child", "amount", ComparisonOperator.LT, 200.0),
            ),
        )
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        result = execute_plan(two_table_db, make_plan(root, two_table_db,
                                                      ("child",)))
        assert result.scalar() == 100

    def test_index_scan_range(self, two_table_db):
        scan = IndexScan(
            table=TableRef("parent"),
            index_name="parent_pkey",
            index_column="id",
            index_predicates=(pred("parent", "id",
                                   ComparisonOperator.BETWEEN, (10.0, 19.0)),),
        )
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        assert result.scalar() == 10

    def test_index_scan_with_residual(self, two_table_db):
        scan = IndexScan(
            table=TableRef("parent"),
            index_name="parent_pkey",
            index_column="id",
            index_predicates=(pred("parent", "id",
                                   ComparisonOperator.LT, 50.0),),
            residual_filters=(pred("parent", "value",
                                   ComparisonOperator.EQ, 0.0),),
        )
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        assert result.scalar() == 5  # ids 0,10,20,30,40

    def test_hypothetical_index_rejected(self, two_table_db):
        two_table_db.create_hypothetical_index("hypo_amount", "child", "amount")
        scan = IndexScan(
            table=TableRef("child"),
            index_name="hypo_amount",
            index_column="amount",
            index_predicates=(pred("child", "amount",
                                   ComparisonOperator.LT, 10.0),),
        )
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        with pytest.raises(ExecutionError):
            execute_plan(two_table_db, make_plan(root, two_table_db, ("child",)))
        two_table_db.drop_index("hypo_amount")

    def test_unknown_index_rejected(self, two_table_db):
        scan = IndexScan(
            table=TableRef("parent"), index_name="ghost", index_column="id",
            index_predicates=(pred("parent", "id", ComparisonOperator.EQ, 1.0),),
        )
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        with pytest.raises(ExecutionError):
            execute_plan(two_table_db, make_plan(root, two_table_db))


def join_plan(db, join_class, filter_year=None):
    """parent JOIN child ON parent.id = child.parent_id."""
    condition = JoinCondition(ColumnRef("parent", "id"),
                              ColumnRef("child", "parent_id"))
    parent_scan = SeqScan(table=TableRef("parent"))
    child_scan = SeqScan(table=TableRef("child"))
    if join_class is HashJoin:
        join = HashJoin(condition=condition,
                        children=[child_scan,
                                  HashBuild(key=condition.left,
                                            children=[parent_scan])])
    elif join_class is MergeJoin:
        join = MergeJoin(
            condition=condition,
            children=[Sort(key=condition.left, children=[parent_scan]),
                      Sort(key=condition.right, children=[child_scan])],
        )
    else:
        join = NestedLoopJoin(condition=condition,
                              children=[parent_scan, child_scan])
    root = PlainAggregate(aggregates=count_star(), children=[join])
    return make_plan(root, db, ("parent", "child")), join


class TestJoins:
    @pytest.mark.parametrize("join_class", [HashJoin, MergeJoin, NestedLoopJoin])
    def test_fk_join_cardinality(self, two_table_db, join_class):
        plan, join = join_plan(two_table_db, join_class)
        result = execute_plan(two_table_db, plan)
        # every child row matches exactly one parent
        assert result.scalar() == 500
        assert join.actual_rows == 500

    def test_index_nested_loop(self, two_table_db):
        condition = JoinCondition(ColumnRef("child", "parent_id"),
                                  ColumnRef("parent", "id"))
        outer = SeqScan(
            table=TableRef("child"),
            filters=(pred("child", "amount", ComparisonOperator.LT, 50.0),),
        )
        inner = IndexScan(
            table=TableRef("parent"),
            index_name="parent_pkey",
            index_column="id",
            lookup_column=ColumnRef("child", "parent_id"),
        )
        join = NestedLoopJoin(condition=condition, children=[outer, inner])
        root = PlainAggregate(aggregates=count_star(), children=[join])
        plan = make_plan(root, two_table_db, ("parent", "child"))
        result = execute_plan(two_table_db, plan)
        assert result.scalar() == 50
        assert inner.actual_rows == 50

    def test_join_result_columns_merged(self, two_table_db):
        plan, join = join_plan(two_table_db, HashJoin)
        executor = Executor(two_table_db)
        relation = executor._execute_node(join)
        assert "parent.value" in relation.columns
        assert "child.amount" in relation.columns

    def test_empty_join(self, two_table_db):
        condition = JoinCondition(ColumnRef("parent", "id"),
                                  ColumnRef("child", "parent_id"))
        parent_scan = SeqScan(
            table=TableRef("parent"),
            filters=(pred("parent", "id", ComparisonOperator.GT, 1000.0),),
        )
        child_scan = SeqScan(table=TableRef("child"))
        join = HashJoin(condition=condition,
                        children=[child_scan,
                                  HashBuild(children=[parent_scan])])
        root = PlainAggregate(aggregates=count_star(), children=[join])
        plan = make_plan(root, two_table_db, ("parent", "child"))
        result = execute_plan(two_table_db, plan)
        assert result.scalar() == 0


class TestAggregates:
    def test_min_max_sum_avg(self, two_table_db):
        scan = SeqScan(table=TableRef("child"))
        aggs = (
            AggregateSpec(AggregateFunction.MIN, ColumnRef("child", "amount")),
            AggregateSpec(AggregateFunction.MAX, ColumnRef("child", "amount")),
            AggregateSpec(AggregateFunction.SUM, ColumnRef("child", "amount")),
            AggregateSpec(AggregateFunction.AVG, ColumnRef("child", "amount")),
        )
        root = PlainAggregate(aggregates=aggs, children=[scan])
        result = execute_plan(two_table_db, make_plan(root, two_table_db,
                                                      ("child",)))
        assert result.scalar(0) == 0.0
        assert result.scalar(1) == 499.0
        assert result.scalar(2) == sum(range(500))
        assert result.scalar(3) == pytest.approx(249.5)

    def test_aggregate_on_empty_input_is_nan(self, two_table_db):
        scan = SeqScan(
            table=TableRef("parent"),
            filters=(pred("parent", "id", ComparisonOperator.GT, 10_000.0),),
        )
        root = PlainAggregate(
            aggregates=(AggregateSpec(AggregateFunction.MIN,
                                      ColumnRef("parent", "value")),),
            children=[scan],
        )
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        assert np.isnan(result.scalar())

    def test_group_by_counts(self, two_table_db):
        scan = SeqScan(table=TableRef("parent"))
        root = HashAggregate(
            group_by=(ColumnRef("parent", "value"),),
            aggregates=(AggregateSpec(AggregateFunction.COUNT),),
            children=[scan],
        )
        plan = make_plan(root, two_table_db)
        result = execute_plan(two_table_db, plan)
        assert root.actual_rows == 10  # values 0..9
        np.testing.assert_allclose(result.relation.columns["agg0"],
                                   np.full(10, 10.0))

    def test_group_by_min(self, two_table_db):
        scan = SeqScan(table=TableRef("parent"))
        root = HashAggregate(
            group_by=(ColumnRef("parent", "value"),),
            aggregates=(AggregateSpec(AggregateFunction.MIN,
                                      ColumnRef("parent", "id")),),
            children=[scan],
        )
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        values = result.relation.columns["parent.value"]
        minima = result.relation.columns["agg0"]
        order = np.argsort(values)
        np.testing.assert_allclose(minima[order], np.arange(10))

    def test_group_by_empty_input(self, two_table_db):
        scan = SeqScan(
            table=TableRef("parent"),
            filters=(pred("parent", "id", ComparisonOperator.GT, 10_000.0),),
        )
        root = HashAggregate(
            group_by=(ColumnRef("parent", "value"),),
            aggregates=(AggregateSpec(AggregateFunction.COUNT),),
            children=[scan],
        )
        result = execute_plan(two_table_db, make_plan(root, two_table_db))
        assert root.actual_rows == 0


class TestPlanMechanics:
    def test_wrong_database_rejected(self, two_table_db, tiny_imdb):
        scan = SeqScan(table=TableRef("parent"))
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        plan = make_plan(root, two_table_db)
        with pytest.raises(ExecutionError):
            Executor(tiny_imdb).execute(plan)

    def test_plan_validation_runs(self, two_table_db):
        bad = HashJoin(condition=None, children=[
            SeqScan(table=TableRef("parent")),
            HashBuild(children=[SeqScan(table=TableRef("child"))]),
        ])
        with pytest.raises(PlanError):
            make_plan(bad, two_table_db, ("parent", "child"))

    def test_is_executed_and_reset(self, two_table_db):
        scan = SeqScan(table=TableRef("parent"))
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        plan = make_plan(root, two_table_db)
        assert not plan.is_executed
        execute_plan(two_table_db, plan)
        assert plan.is_executed
        plan.reset_actuals()
        assert not plan.is_executed

    def test_rows_source_selection(self, two_table_db):
        scan = SeqScan(table=TableRef("parent"))
        scan.est_rows = 42.0
        root = PlainAggregate(aggregates=count_star(), children=[scan])
        plan = make_plan(root, two_table_db)
        assert scan.rows(use_actual=False) == 42.0
        with pytest.raises(PlanError):
            scan.rows(use_actual=True)
        execute_plan(two_table_db, plan)
        assert scan.rows(use_actual=True) == 100.0


class TestPredicateMask:
    def test_nulls_never_match(self):
        values = np.array([1, 2, 3])
        nulls = np.array([False, True, False])
        predicate = pred("t", "c", ComparisonOperator.GT, 0.0)
        mask = predicate_mask(values, nulls, predicate)
        assert mask.tolist() == [True, False, True]

    def test_in_operator(self):
        values = np.array([1, 2, 3, 4])
        predicate = pred("t", "c", ComparisonOperator.IN, (2.0, 4.0))
        assert predicate_mask(values, None, predicate).tolist() == \
            [False, True, False, True]

    def test_neq(self):
        values = np.array([1, 2])
        predicate = pred("t", "c", ComparisonOperator.NEQ, 1.0)
        assert predicate_mask(values, None, predicate).tolist() == [False, True]
