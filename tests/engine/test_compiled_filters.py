"""Compiled filter kernels: bit-identity with the interpreted oracle.

The compiled path reorders predicates by selectivity rank, narrows
progressively and short-circuits — none of which may change a single
surviving row.  This suite pins the equivalence against the
interpreted ``predicate_mask`` / ``conjunction_mask`` reference across
all operators, dtypes, NULL-mask presence, empty relations, and the
contradiction conjunctions the PR 7 filter-merge rule deliberately
keeps (e.g. ``x = 1 AND x = 2``).
"""

import numpy as np
import pytest

from repro.engine import (
    CompiledFilter,
    CompiledFilterCache,
    Executor,
    compile_filter,
    compile_predicate,
    conjunction_mask,
    execute_plan,
    predicate_mask,
)
from repro.errors import ExecutionError
from repro.plans import (
    HashBuild,
    HashJoin,
    IndexScan,
    PhysicalPlan,
    PlainAggregate,
    SeqScan,
)
from repro.sql.ast import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    ComparisonOperator,
    JoinCondition,
    Predicate,
    Query,
    TableRef,
)

pytestmark = pytest.mark.perf

RNG = np.random.default_rng(1234)


def pred(column, op, value, table="t"):
    return Predicate(ColumnRef(table, column), op, value)


def make_columns(num_rows, dtype, with_nulls):
    """One synthetic column (+ optional NULL mask) with repeated values
    so equality predicates actually select something."""
    if dtype == np.int64:
        values = RNG.integers(-5, 15, size=num_rows).astype(np.int64)
    else:
        values = np.round(
            RNG.uniform(-5.0, 15.0, size=num_rows), 1).astype(np.float64)
    nulls = None
    if with_nulls and num_rows:
        nulls = RNG.random(num_rows) < 0.2
    return values, nulls


ALL_PREDICATES = [
    # Integer-valued float literals (what the workload generators emit)
    # exercise the compiled int-domain specialization on int64 columns.
    pred("x", ComparisonOperator.EQ, 3.0),
    pred("x", ComparisonOperator.NEQ, 3.0),
    pred("x", ComparisonOperator.LT, 7.0),
    pred("x", ComparisonOperator.LEQ, 7.0),
    pred("x", ComparisonOperator.GT, 2.0),
    pred("x", ComparisonOperator.GEQ, 2.0),
    pred("x", ComparisonOperator.BETWEEN, (1.0, 9.0)),
    pred("x", ComparisonOperator.IN, (1.0, 3.0, 5.0, 5.0, 2.0)),
    # Fractional literals force the float-domain comparison on every
    # column dtype (no exact int form exists).
    pred("x", ComparisonOperator.EQ, 2.5),
    pred("x", ComparisonOperator.LT, 6.5),
    pred("x", ComparisonOperator.BETWEEN, (1.5, 8.5)),
    pred("x", ComparisonOperator.IN, (2.5, 3.0, 7.0)),
    # A >16-candidate list compiles to the searchsorted kernel; one
    # all-integer, one mixed (mixed disables the int-domain table).
    pred("x", ComparisonOperator.IN, tuple(float(i) for i in range(-3, 15))),
    pred("x", ComparisonOperator.IN,
         (0.5,) + tuple(float(i) for i in range(-3, 14))),
]


def interpreted_keep(values, nulls, filters):
    """The oracle: all masks, AND-fold, flatnonzero."""
    masks = [predicate_mask(values, nulls, f) for f in filters]
    return np.flatnonzero(conjunction_mask(len(values), masks))


class TestPredicateKernels:
    @pytest.mark.parametrize("predicate", ALL_PREDICATES,
                             ids=lambda p: p.operator.name)
    @pytest.mark.parametrize("dtype", [np.int64, np.float64],
                             ids=["int64", "float64"])
    @pytest.mark.parametrize("with_nulls", [False, True],
                             ids=["dense", "nullable"])
    def test_single_predicate_bit_identical(self, predicate, dtype,
                                            with_nulls):
        values, nulls = make_columns(500, dtype, with_nulls)
        compiled = compile_predicate(predicate)
        mask = compiled.kernel(values)
        if nulls is not None:
            mask = mask & ~nulls
        expected = predicate_mask(values, nulls, predicate)
        assert mask.dtype == np.bool_
        np.testing.assert_array_equal(mask, expected)

    @pytest.mark.parametrize("predicate", ALL_PREDICATES,
                             ids=lambda p: p.operator.name)
    def test_empty_relation(self, predicate):
        values = np.empty(0, dtype=np.float64)
        compiled = compile_filter((predicate,))
        keep = compiled.keep_positions(lambda _: values, lambda _: None, 0)
        assert keep.shape == (0,)
        np.testing.assert_array_equal(
            keep, interpreted_keep(values, None, (predicate,)))

    def test_in_kernel_matches_isin_with_nan(self):
        """NaN candidates and NaN values: searchsorted must agree with
        np.isin (NaN == NaN is False under IEEE compare on both paths)."""
        values = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        predicate = pred("x", ComparisonOperator.IN, (np.nan, 3.0, 1.0))
        compiled = compile_predicate(predicate)
        np.testing.assert_array_equal(
            compiled.kernel(values), predicate_mask(values, None, predicate))

    def test_empty_in_list_rejected(self):
        """The AST rejects empty IN tuples at construction; the compile
        step keeps its own guard for duck-typed predicates."""
        from repro.errors import QueryError
        with pytest.raises(QueryError, match="non-empty"):
            pred("x", ComparisonOperator.IN, ())

        class FakePredicate:
            column = ColumnRef("t", "x")
            operator = ComparisonOperator.IN
            value = ()

        with pytest.raises(ExecutionError, match="empty"):
            compile_predicate(FakePredicate())


class TestConjunctions:
    @pytest.mark.parametrize("dtype", [np.int64, np.float64],
                             ids=["int64", "float64"])
    @pytest.mark.parametrize("with_nulls", [False, True],
                             ids=["dense", "nullable"])
    def test_random_conjunctions_bit_identical(self, dtype, with_nulls):
        """Random subsets of every operator, in random order: the
        selectivity-reordered narrowing path keeps exactly the
        interpreted rows, in ascending order."""
        for trial in range(25):
            values, nulls = make_columns(400, dtype, with_nulls)
            size = int(RNG.integers(1, len(ALL_PREDICATES) + 1))
            chosen = RNG.permutation(len(ALL_PREDICATES))[:size]
            filters = tuple(ALL_PREDICATES[i] for i in chosen)
            compiled = compile_filter(filters)
            keep = compiled.keep_positions(
                lambda _: values, lambda _: nulls, len(values))
            np.testing.assert_array_equal(
                keep, interpreted_keep(values, nulls, filters))

    def test_multi_column_conjunction(self):
        xs, x_nulls = make_columns(300, np.int64, True)
        ys, _ = make_columns(300, np.float64, False)
        columns = {"x": xs, "y": ys}
        null_masks = {"x": x_nulls, "y": None}
        filters = (
            pred("y", ComparisonOperator.BETWEEN, (0.0, 10.0)),
            pred("x", ComparisonOperator.EQ, 4.0),
            pred("y", ComparisonOperator.GEQ, 2.0),
        )
        compiled = compile_filter(filters)
        keep = compiled.keep_positions(
            columns.__getitem__, null_masks.__getitem__, 300)
        masks = [predicate_mask(columns[f.column.column],
                                null_masks[f.column.column], f)
                 for f in filters]
        np.testing.assert_array_equal(
            keep, np.flatnonzero(conjunction_mask(300, masks)))

    def test_contradiction_conjunctions_kept_by_rewrite(self):
        """PR 7's filter-merge rule deliberately keeps contradictions
        (``x = 1 AND x = 2``, disjoint BETWEENs): the compiled path must
        return the same empty result, via early exit, not an error."""
        values = np.arange(200, dtype=np.int64)
        contradictions = [
            (pred("x", ComparisonOperator.EQ, 1.0),
             pred("x", ComparisonOperator.EQ, 2.0)),
            (pred("x", ComparisonOperator.BETWEEN, (0.0, 10.0)),
             pred("x", ComparisonOperator.BETWEEN, (50.0, 60.0))),
            (pred("x", ComparisonOperator.LT, 5.0),
             pred("x", ComparisonOperator.GT, 100.0)),
        ]
        for filters in contradictions:
            compiled = compile_filter(filters)
            keep = compiled.keep_positions(
                lambda _: values, lambda _: None, len(values))
            assert keep.shape == (0,)
            np.testing.assert_array_equal(
                keep, interpreted_keep(values, None, filters))

    def test_empty_conjunction_keeps_everything(self):
        compiled = compile_filter(())
        keep = compiled.keep_positions(
            lambda _: np.arange(7), lambda _: None, 7)
        np.testing.assert_array_equal(keep, np.arange(7, dtype=np.int64))

    def test_predicates_sorted_by_selectivity_rank_stably(self):
        filters = (
            pred("x", ComparisonOperator.GEQ, 1.0),
            pred("x", ComparisonOperator.EQ, 2.0),
            pred("y", ComparisonOperator.LT, 9.0),
            pred("z", ComparisonOperator.EQ, 3.0),
        )
        compiled = CompiledFilter(filters)
        ops = [p.source.operator for p in compiled.predicates]
        assert ops == [ComparisonOperator.EQ, ComparisonOperator.EQ,
                       ComparisonOperator.GEQ, ComparisonOperator.LT]
        # Stable within a rank: x's EQ before z's EQ, GEQ before LT.
        assert compiled.predicates[0].column == "x"
        assert compiled.predicates[1].column == "z"

    def test_interpreted_conjunction_lone_mask_returned_directly(self):
        mask = np.array([True, False, True])
        assert conjunction_mask(3, [mask]) is mask

    def test_interpreted_conjunction_never_mutates_inputs(self):
        first = np.array([True, True, False])
        second = np.array([True, False, False])
        result = conjunction_mask(3, [first, second])
        np.testing.assert_array_equal(first, [True, True, False])
        np.testing.assert_array_equal(result, [True, False, False])


class TestCompiledFilterCache:
    def test_hits_and_misses(self):
        cache = CompiledFilterCache()
        filters = (pred("x", ComparisonOperator.EQ, 1.0),)
        first = cache.get_or_compile(("t", filters), filters)
        second = cache.get_or_compile(("t", filters), filters)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        cache.get_or_compile(("u", filters), filters)
        assert (cache.hits, cache.misses, len(cache)) == (1, 2, 2)

    def test_lru_eviction(self):
        cache = CompiledFilterCache(max_entries=2)
        filters = (pred("x", ComparisonOperator.EQ, 1.0),)
        a = cache.get_or_compile(("a", filters), filters)
        cache.get_or_compile(("b", filters), filters)
        cache.get_or_compile(("a", filters), filters)  # refresh a
        cache.get_or_compile(("c", filters), filters)  # evicts b
        assert len(cache) == 2
        assert cache.get_or_compile(("a", filters), filters) is a
        b_again = cache.get_or_compile(("b", filters), filters)
        assert b_again is not a  # recompiled after eviction

    def test_clear_resets_counters(self):
        cache = CompiledFilterCache()
        filters = (pred("x", ComparisonOperator.EQ, 1.0),)
        cache.get_or_compile(("t", filters), filters)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ExecutionError, match="positive"):
            CompiledFilterCache(max_entries=0)


def _relations_equal(left, right):
    assert set(left.columns) == set(right.columns)
    for key in left.columns:
        np.testing.assert_array_equal(left.columns[key], right.columns[key])
    assert set(left.null_masks) == set(right.null_masks)
    for key in left.null_masks:
        np.testing.assert_array_equal(left.null_masks[key],
                                      right.null_masks[key])


class TestExecutorEquivalence:
    """Full plans through the compiled executor vs the interpreted
    oracle (``compile_filters=False``) produce identical relations."""

    def _both(self, db, plan):
        compiled = Executor(db).execute(plan)
        oracle = Executor(db, compile_filters=False).execute(plan)
        assert compiled.root_rows == oracle.root_rows
        _relations_equal(compiled.relation, oracle.relation)
        return compiled

    def test_filtered_seq_scan(self, two_table_db):
        scan = SeqScan(
            table=TableRef("child"),
            filters=(
                pred("amount", ComparisonOperator.GEQ, 100.0, "child"),
                pred("amount", ComparisonOperator.LT, 200.0, "child"),
                pred("parent_id", ComparisonOperator.IN,
                     (3.0, 7.0, 11.0), "child"),
            ),
        )
        plan = PhysicalPlan(
            root=scan, query=Query(tables=(TableRef("child"),)),
            database_name=two_table_db.name)
        result = self._both(two_table_db, plan)
        assert result.root_rows > 0

    def test_index_scan_residual_filters(self, two_table_db):
        scan = IndexScan(
            table=TableRef("parent"),
            index_name="parent_pkey",
            index_column="id",
            index_predicates=(pred("id", ComparisonOperator.LT, 50.0,
                                   "parent"),),
            residual_filters=(pred("value", ComparisonOperator.EQ, 0.0,
                                   "parent"),),
        )
        plan = PhysicalPlan(
            root=scan, query=Query(tables=(TableRef("parent"),)),
            database_name=two_table_db.name)
        result = self._both(two_table_db, plan)
        assert result.root_rows == 5  # ids 0,10,20,30,40

    def test_join_over_filtered_scans(self, two_table_db):
        parent = SeqScan(
            table=TableRef("parent"),
            filters=(pred("value", ComparisonOperator.BETWEEN, (2.0, 6.0),
                          "parent"),),
        )
        child = SeqScan(
            table=TableRef("child"),
            filters=(pred("amount", ComparisonOperator.GEQ, 50.0, "child"),),
        )
        join = HashJoin(
            condition=JoinCondition(ColumnRef("child", "parent_id"),
                                    ColumnRef("parent", "id")),
            children=[child, HashBuild(key=ColumnRef("parent", "id"),
                                       children=[parent])],
        )
        root = PlainAggregate(
            aggregates=(AggregateSpec(AggregateFunction.COUNT),),
            children=[join])
        query = Query(tables=(TableRef("parent"), TableRef("child")))
        plan = PhysicalPlan(root=root, query=query,
                            database_name=two_table_db.name)
        result = self._both(two_table_db, plan)
        assert result.relation.columns  # count materialized

    def test_repeated_execution_hits_filter_cache(self, two_table_db):
        scan = SeqScan(
            table=TableRef("parent"),
            filters=(pred("value", ComparisonOperator.EQ, 3.0, "parent"),),
        )
        plan = PhysicalPlan(
            root=scan, query=Query(tables=(TableRef("parent"),)),
            database_name=two_table_db.name)
        executor = Executor(two_table_db)
        first = executor.execute(plan)
        misses = executor.filter_cache.misses
        second = executor.execute(plan)
        assert executor.filter_cache.misses == misses
        assert executor.filter_cache.hits >= 1
        _relations_equal(first.relation, second.relation)

    def test_execute_plan_defaults_to_compiled(self, two_table_db):
        scan = SeqScan(
            table=TableRef("parent"),
            filters=(pred("value", ComparisonOperator.EQ, 3.0, "parent"),),
        )
        plan = PhysicalPlan(
            root=scan, query=Query(tables=(TableRef("parent"),)),
            database_name=two_table_db.name)
        result = execute_plan(two_table_db, plan)
        assert result.root_rows == 10
        assert scan.actual_rows == 10
