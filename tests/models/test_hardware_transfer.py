"""Hardware-aware zero-shot models: rng-stream preservation, eager
validation, machine-sensitive predictions, estimator threading."""

import numpy as np
import pytest

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.engine import execute_plan
from repro.errors import FeaturizationError, ModelError
from repro.featurize import CardinalitySource, ZeroShotFeaturizer
from repro.models import (
    TrainerConfig,
    ZeroShotConfig,
    ZeroShotCostModel,
    ZeroShotEstimator,
)
from repro.optimizer import plan_query
from repro.runtime import RuntimeSimulator, SystemParameters
from repro.sql import parse_query

from tests.models.conftest import _simple_queries

pytestmark = pytest.mark.hardware

MACHINES = {
    "default": SystemParameters(),
    "faster-cpu": SystemParameters.faster_cpu(),
    "slow-disk": SystemParameters.slow_disk(),
}


@pytest.fixture(scope="module")
def hardware_dbs():
    return [
        generate_database(SyntheticDatabaseSpec(
            name=f"hw{i}", seed=300 + i, num_tables=3,
            min_rows=500, max_rows=3_000,
        ))
        for i in range(3)
    ]


def build_machine_graphs(databases, queries_per_db, system_features,
                         seed=0):
    """Each database's workload executes on its own machine; graphs are
    labelled with that machine's runtimes (and carry its system node
    when ``system_features`` is on)."""
    featurizer = ZeroShotFeaturizer(CardinalitySource.ACTUAL,
                                    system_features=system_features)
    machines = list(MACHINES.values())
    graphs = []
    for db_index, db in enumerate(databases):
        machine = machines[db_index % len(machines)]
        simulator = RuntimeSimulator(db, system=machine,
                                     rng=np.random.default_rng(seed + db_index))
        for query in _simple_queries(db, queries_per_db, seed + 91 * db_index):
            plan = plan_query(db, query)
            execute_plan(db, plan)
            runtime = simulator.simulate(plan)
            graphs.append(featurizer.featurize(
                plan, db, runtime.total_seconds,
                system=machine if system_features else None,
            ))
    return graphs


@pytest.fixture(scope="module")
def aware_graphs(hardware_dbs):
    return build_machine_graphs(hardware_dbs, 40, system_features=True)


@pytest.fixture(scope="module")
def blind_graphs(hardware_dbs):
    return build_machine_graphs(hardware_dbs, 40, system_features=False)


def quick_trainer(epochs=25):
    return TrainerConfig(epochs=epochs, batch_size=32, seed=0,
                         early_stopping_patience=epochs)


class TestRngStreamPreservation:
    def test_shared_modules_bit_identical_with_flag_on(self):
        """Enabling system_features must not shift any pre-existing
        module's initial weights: old configs (and the models saved
        under them) keep their exact rng stream."""
        blind = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=5))
        aware = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=5,
                                                 system_features=True))
        blind_state = blind.net.state_dict()
        aware_state = aware.net.state_dict()
        assert set(blind_state) < set(aware_state)  # strictly more modules
        for key, value in blind_state.items():
            np.testing.assert_array_equal(aware_state[key], value, err_msg=key)


class TestEagerValidation:
    def test_aware_model_rejects_blind_graphs(self, blind_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32,
                                                 system_features=True))
        with pytest.raises(ModelError, match="no[\\s]+system node"):
            model.fit(blind_graphs, quick_trainer(epochs=1))

    def test_blind_model_rejects_aware_graphs(self, aware_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32))
        with pytest.raises(ModelError, match="system_features=True"):
            model.fit(aware_graphs, quick_trainer(epochs=1))


class TestHardwareAwareTraining:
    def test_predictions_depend_on_the_machine(self, hardware_dbs,
                                               aware_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=7,
                                                 system_features=True))
        model.fit(aware_graphs, quick_trainer())

        db = hardware_dbs[0]
        query = _simple_queries(db, 1, seed=999)[0]
        plan = plan_query(db, query)
        execute_plan(db, plan)
        featurizer = ZeroShotFeaturizer(CardinalitySource.ACTUAL,
                                        system_features=True)
        predictions = {
            name: float(model.predict_runtime(
                [featurizer.featurize(plan, db, system=machine)])[0])
            for name, machine in MACHINES.items()
        }
        # The same plan prices differently across machines — the whole
        # point of the system node.
        assert len({round(v, 12) for v in predictions.values()}) > 1

    def test_save_load_round_trips_the_flag(self, aware_graphs, tmp_path):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=7,
                                                 system_features=True))
        model.fit(aware_graphs, quick_trainer(epochs=5))
        model.save(tmp_path / "aware")
        loaded = ZeroShotCostModel.load(tmp_path / "aware")
        assert loaded.config.system_features is True
        np.testing.assert_array_equal(
            loaded.predict_log_runtime(aware_graphs[:10]),
            model.predict_log_runtime(aware_graphs[:10]),
        )


class TestEstimatorThreading:
    def test_estimator_featurizes_for_its_machine(self, aware_graphs,
                                                  hardware_dbs, tmp_path):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=7,
                                                 system_features=True))
        model.fit(aware_graphs, quick_trainer(epochs=5))
        machine = SystemParameters.slow_disk()
        estimator = ZeroShotEstimator.from_model(
            model, CardinalitySource.ACTUAL, system=machine)
        assert estimator.featurizer.system_features is True
        assert estimator.featurizer.system == machine

        db = hardware_dbs[0]
        plan = plan_query(db, _simple_queries(db, 1, seed=999)[0])
        execute_plan(db, plan)
        prediction = estimator.predict_runtime([plan], db)

        estimator.save(tmp_path / "est")
        loaded = ZeroShotEstimator.load(tmp_path / "est")
        assert loaded.system == machine
        np.testing.assert_array_equal(loaded.predict_runtime([plan], db),
                                      prediction)

    def test_blind_model_with_a_machine_rejected(self, blind_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32))
        model.fit(blind_graphs, quick_trainer(epochs=1))
        with pytest.raises(FeaturizationError, match="system_features"):
            ZeroShotEstimator.from_model(model, CardinalitySource.ACTUAL,
                                         system=SystemParameters())
