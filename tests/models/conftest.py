"""Shared model-test fixtures: a small labelled corpus on two databases."""

import numpy as np
import pytest

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.engine import execute_plan
from repro.featurize import CardinalitySource, ZeroShotFeaturizer
from repro.optimizer import plan_query
from repro.runtime import RuntimeSimulator
from repro.sql import parse_query


def _simple_queries(db, count, seed):
    """Cheap ad-hoc workload: single-table ranges + FK joins."""
    rng = np.random.default_rng(seed)
    texts = []
    names = db.schema.table_names
    fks = db.schema.foreign_keys
    for _ in range(count):
        if fks and rng.random() < 0.5:
            fk = fks[int(rng.integers(0, len(fks)))]
            texts.append(
                f"SELECT COUNT(*) FROM {fk.child_table} c, {fk.parent_table} p "
                f"WHERE c.{fk.child_column} = p.{fk.parent_column} "
                f"AND p.id < {int(rng.integers(10, db.num_rows(fk.parent_table)))}"
            )
        else:
            name = names[int(rng.integers(0, len(names)))]
            cut = int(rng.integers(1, max(db.num_rows(name), 2)))
            texts.append(f"SELECT COUNT(*) FROM {name} x WHERE x.id < {cut}")
    return [parse_query(t) for t in texts]


def build_labelled_graphs(databases, queries_per_db, source, seed=0):
    featurizer = ZeroShotFeaturizer(source)
    graphs = []
    for db_index, db in enumerate(databases):
        simulator = RuntimeSimulator(db, rng=np.random.default_rng(seed + db_index))
        for query in _simple_queries(db, queries_per_db, seed + 91 * db_index):
            plan = plan_query(db, query)
            execute_plan(db, plan)
            runtime = simulator.simulate(plan)
            graphs.append(featurizer.featurize(plan, db, runtime.total_seconds))
    return graphs


@pytest.fixture(scope="module")
def training_dbs():
    return [
        generate_database(SyntheticDatabaseSpec(
            name=f"m{i}", seed=100 + i, num_tables=3 + (i % 3),
            min_rows=500, max_rows=4_000,
        ))
        for i in range(4)
    ]


@pytest.fixture(scope="module")
def labelled_graphs(training_dbs):
    return build_labelled_graphs(training_dbs, 50, CardinalitySource.ACTUAL)
