"""Zero-shot cost model: learning, generalization, persistence, few-shot."""

import numpy as np
import pytest

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.errors import ModelError
from repro.featurize import CardinalitySource
from repro.models import (
    TrainerConfig,
    ZeroShotConfig,
    ZeroShotCostModel,
    fine_tune,
    q_error_stats,
)

from tests.models.conftest import build_labelled_graphs


def quick_trainer(epochs=30, seed=0):
    return TrainerConfig(epochs=epochs, batch_size=32, seed=seed,
                         early_stopping_patience=epochs)


class TestOnePassFeaturization:
    """The prebuilt-batch path must be a pure optimization: same random
    stream, same batches, bit-identical numbers as the historical
    re-featurize-per-batch path."""

    def test_prebuilt_training_is_bit_identical(self, labelled_graphs):
        trainer = quick_trainer(epochs=6)
        prebuilt = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=3))
        history_prebuilt = prebuilt.fit(labelled_graphs, trainer,
                                        prebuild=True)
        legacy = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=3))
        history_legacy = legacy.fit(labelled_graphs, trainer, prebuild=False)

        assert history_prebuilt.train_losses == history_legacy.train_losses
        assert history_prebuilt.validation_losses == \
            history_legacy.validation_losses
        assert history_prebuilt.best_epoch == history_legacy.best_epoch
        np.testing.assert_array_equal(
            prebuilt.predict_log_runtime(labelled_graphs[:25]),
            legacy.predict_log_runtime(labelled_graphs[:25]),
        )


class TestTraining:
    def test_fit_reduces_loss(self, labelled_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=1))
        history = model.fit(labelled_graphs, quick_trainer())
        assert history.train_losses[-1] < history.train_losses[0]
        assert history.best_epoch >= 0

    def test_accuracy_on_training_distribution(self, labelled_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=2))
        model.fit(labelled_graphs, quick_trainer(epochs=60))
        predictions = model.predict_runtime(labelled_graphs)
        truths = np.exp([g.target_log_runtime for g in labelled_graphs])
        stats = q_error_stats(predictions, truths)
        assert stats.median < 1.5

    def test_zero_shot_generalization_to_unseen_db(self, labelled_graphs):
        """The headline property: good predictions on a database that was
        never part of training."""
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=3))
        model.fit(labelled_graphs, quick_trainer(epochs=60))
        unseen = generate_database(SyntheticDatabaseSpec(
            name="unseen", seed=777, num_tables=4,
            min_rows=800, max_rows=5_000,
        ))
        test_graphs = build_labelled_graphs([unseen], 30,
                                            CardinalitySource.ACTUAL, seed=5)
        truths = np.exp([g.target_log_runtime for g in test_graphs])
        predictions = model.predict_runtime(test_graphs)
        stats = q_error_stats(predictions, truths)
        assert stats.median < 2.0

    def test_empty_fit_rejected(self):
        with pytest.raises(ModelError):
            ZeroShotCostModel().fit([])

    def test_unlabelled_graphs_rejected(self, labelled_graphs):
        graph = labelled_graphs[0]
        unlabelled = type(graph)(
            features=graph.features, node_type_of=graph.node_type_of,
            type_row_of=graph.type_row_of, edges=graph.edges,
            root=graph.root, target_log_runtime=None,
        )
        with pytest.raises(ModelError):
            ZeroShotCostModel().fit([unlabelled])

    def test_predict_before_fit_rejected(self, labelled_graphs):
        with pytest.raises(ModelError):
            ZeroShotCostModel().predict_runtime(labelled_graphs[:1])

    def test_predict_empty_list(self, labelled_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=16, seed=0))
        model.fit(labelled_graphs[:10], quick_trainer(epochs=2))
        assert model.predict_runtime([]).shape == (0,)

    def test_deterministic_given_seed(self, labelled_graphs):
        results = []
        for _ in range(2):
            model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=16, seed=9))
            model.fit(labelled_graphs[:20], quick_trainer(epochs=5, seed=4))
            results.append(model.predict_runtime(labelled_graphs[:5]))
        np.testing.assert_allclose(results[0], results[1])


class TestPersistence:
    def test_save_load_roundtrip(self, labelled_graphs, tmp_path):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=16, seed=0))
        model.fit(labelled_graphs[:30], quick_trainer(epochs=5))
        reference = model.predict_runtime(labelled_graphs[:10])
        model.save(tmp_path / "zs")
        loaded = ZeroShotCostModel.load(tmp_path / "zs")
        np.testing.assert_allclose(
            loaded.predict_runtime(labelled_graphs[:10]), reference
        )

    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            ZeroShotCostModel().save(tmp_path / "nope")


class TestFewShot:
    def test_fine_tune_improves_on_target(self, labelled_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=5))
        model.fit(labelled_graphs, quick_trainer(epochs=40))
        target = generate_database(SyntheticDatabaseSpec(
            name="target", seed=555, num_tables=3,
            min_rows=500, max_rows=3_000,
        ))
        target_graphs = build_labelled_graphs([target], 40,
                                              CardinalitySource.ACTUAL, seed=8)
        support, evaluation = target_graphs[:20], target_graphs[20:]
        truths = np.exp([g.target_log_runtime for g in evaluation])

        base_stats = q_error_stats(model.predict_runtime(evaluation), truths)
        tuned = fine_tune(model, support, TrainerConfig(
            epochs=25, learning_rate=3e-4, batch_size=8,
            validation_fraction=0.0, early_stopping_patience=25,
        ))
        tuned_stats = q_error_stats(tuned.predict_runtime(evaluation), truths)
        assert tuned_stats.median <= base_stats.median * 1.15

    def test_fine_tune_does_not_mutate_original(self, labelled_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=16, seed=6))
        model.fit(labelled_graphs[:20], quick_trainer(epochs=3))
        before = model.predict_runtime(labelled_graphs[:5]).copy()
        fine_tune(model, labelled_graphs[20:30], TrainerConfig(
            epochs=3, validation_fraction=0.0, early_stopping_patience=3,
        ))
        np.testing.assert_allclose(model.predict_runtime(labelled_graphs[:5]),
                                   before)

    def test_fine_tune_requires_fitted_model(self, labelled_graphs):
        with pytest.raises(ModelError):
            fine_tune(ZeroShotCostModel(), labelled_graphs[:3])

    def test_fine_tune_requires_graphs(self, labelled_graphs):
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=16, seed=0))
        model.fit(labelled_graphs[:10], quick_trainer(epochs=2))
        with pytest.raises(ModelError):
            fine_tune(model, [])
