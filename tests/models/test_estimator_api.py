"""Conformance suite for the unified ``CostEstimator`` contract.

Every registered estimator must satisfy the same surface: uniform
``ModelError`` before fit, plan/SQL/query prediction, per-plan ==
batched (batch-size-invariant inference), save/load round-trips, and —
for the workload-driven models — the out-of-vocabulary fallback.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.featurize import CardinalitySource
from repro.models import (
    CostEstimator,
    TrainerConfig,
    ZeroShotEstimator,
    available_estimators,
    get_estimator,
    load_estimator,
    register_estimator,
)
from repro.models.api import reset_estimators
from repro.sql import parse_query
from repro.workload import WorkloadRunner, make_benchmark_workload

ALL_NAMES = ("zero-shot", "zero-shot-cardinality", "flat", "mscn", "e2e",
             "scaled-optimizer-cost")
WORKLOAD_DRIVEN = ("mscn", "e2e")


@pytest.fixture(scope="module")
def executed(tiny_imdb):
    runner = WorkloadRunner(tiny_imdb, seed=5)
    return runner.run(make_benchmark_workload(tiny_imdb, "scale", 30, seed=5))


@pytest.fixture(scope="module")
def fitted(tiny_imdb, executed):
    trainer = TrainerConfig(epochs=6, batch_size=16,
                            early_stopping_patience=6, seed=0)
    return {name: get_estimator(name).fit(executed, tiny_imdb, trainer)
            for name in ALL_NAMES}


class TestRegistry:
    def test_builtins_registered(self):
        names = available_estimators()
        for name in ALL_NAMES:
            assert name in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError, match="unknown estimator"):
            get_estimator("no-such-model")

    def test_register_and_reset(self):
        class Custom(ZeroShotEstimator):
            name = "custom-test-estimator"

        previous = register_estimator("custom-test-estimator", Custom)
        assert previous is None
        try:
            assert isinstance(get_estimator("custom-test-estimator"), Custom)
        finally:
            reset_estimators()
        assert "custom-test-estimator" not in available_estimators()

    def test_registration_validation(self):
        with pytest.raises(ModelError):
            register_estimator("", ZeroShotEstimator)
        with pytest.raises(ModelError):
            register_estimator("not-callable", object())


class TestContract:
    # Parametrized over the *live* registry: any estimator registered in
    # the future is automatically held to the same contract.
    @pytest.mark.parametrize("name", available_estimators())
    def test_unfitted_predict_raises_uniform_model_error(self, name,
                                                         tiny_imdb,
                                                         executed):
        estimator = get_estimator(name)
        assert isinstance(estimator, CostEstimator)
        assert estimator.name == name
        assert not estimator.is_fitted
        plans = [executed[0].plan]
        with pytest.raises(ModelError, match="before fit"):
            estimator.predict_runtime(plans, tiny_imdb)
        with pytest.raises(ModelError, match="before fit"):
            estimator.predict_log_runtime(plans, tiny_imdb)
        with pytest.raises(ModelError):
            estimator.save("/nonexistent/never-written")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_fit_then_predict(self, name, fitted, tiny_imdb, executed):
        estimator = fitted[name]
        assert estimator.is_fitted
        plans = [r.plan for r in executed[:8]]
        runtimes = estimator.predict_runtime(plans, tiny_imdb)
        assert runtimes.shape == (8,)
        assert (runtimes > 0).all()
        logs = estimator.predict_log_runtime(plans, tiny_imdb)
        np.testing.assert_array_equal(np.exp(logs), runtimes)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_empty_batch(self, name, fitted, tiny_imdb):
        assert fitted[name].predict_runtime([], tiny_imdb).shape == (0,)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sql_and_query_inputs(self, name, fitted, tiny_imdb):
        estimator = fitted[name]
        sql = ("SELECT COUNT(*) FROM title t "
               "WHERE t.production_year > 2000")
        from_sql = estimator.predict_runtime([sql], tiny_imdb)
        from_query = estimator.predict_runtime([parse_query(sql)], tiny_imdb)
        np.testing.assert_array_equal(from_sql, from_query)
        with pytest.raises(ModelError, match="requires a database"):
            estimator.predict_runtime([sql])

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_per_plan_equals_batched(self, name, fitted, tiny_imdb,
                                     executed):
        """Batch-size-invariant inference: the property repro.serve's
        bit-identity guarantee is built on."""
        estimator = fitted[name]
        plans = [r.plan for r in executed[:10]]
        batched = estimator.predict_runtime(plans, tiny_imdb)
        per_plan = np.array([estimator.predict_runtime([p], tiny_imdb)[0]
                             for p in plans])
        np.testing.assert_array_equal(batched, per_plan)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_save_load_round_trip(self, name, fitted, tiny_imdb, executed,
                                  tmp_path):
        estimator = fitted[name]
        plans = [r.plan for r in executed[:6]]
        expected = estimator.predict_runtime(plans, tiny_imdb)
        directory = tmp_path / name
        estimator.save(directory)
        loaded = load_estimator(directory, tiny_imdb)
        assert type(loaded) is type(estimator)
        assert loaded.is_fitted
        np.testing.assert_array_equal(
            loaded.predict_runtime(plans, tiny_imdb), expected)

    def test_load_estimator_on_garbage(self, tmp_path):
        with pytest.raises(ModelError, match="saved estimator"):
            load_estimator(tmp_path)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_peek_manifest_names_saved_estimator(self, name, fitted,
                                                 tmp_path):
        """The serving tier's pre-swap hook: the manifest identifies the
        saved estimator without touching any weights."""
        from repro.models import peek_manifest

        directory = tmp_path / name
        fitted[name].save(directory)
        payload = peek_manifest(directory)
        assert payload["name"] == name

    def test_peek_manifest_rejects_garbage_and_unloadable(self, fitted,
                                                          tmp_path):
        from repro.models import peek_manifest, register_estimator

        with pytest.raises(ModelError, match="saved estimator"):
            peek_manifest(tmp_path)  # no manifest at all
        # A manifest naming an estimator with no registered loader is
        # rejected before load_estimator would fail on it.
        name = ALL_NAMES[0]
        directory = tmp_path / "orphan"
        fitted[name].save(directory)
        previous = register_estimator(name, None)
        try:
            with pytest.raises(ModelError, match="no registered"):
                peek_manifest(directory)
        finally:
            register_estimator(name, previous)


class TestWorkloadDrivenSpecifics:
    @pytest.mark.parametrize("name", WORKLOAD_DRIVEN)
    def test_out_of_vocabulary_fallback(self, name, fitted, tiny_imdb,
                                        executed):
        """Plans outside the one-hot vocabulary are priced at the
        training-median runtime instead of erroring out."""
        estimator = fitted[name]
        # The training workload ("scale") never filters on title.id, so
        # the predicate column is outside both one-hot vocabularies.
        runner = WorkloadRunner(tiny_imdb, seed=99)
        record = runner.run_query(parse_query(
            "SELECT COUNT(*) FROM title t WHERE t.id < 50"))
        prediction = estimator.predict_runtime([record.plan], tiny_imdb)
        fallback = np.exp(estimator.fallback_log_runtime)
        np.testing.assert_allclose(prediction, [fallback])

    @pytest.mark.parametrize("name", WORKLOAD_DRIVEN)
    def test_multi_database_training_rejected(self, name, executed,
                                              small_synthetic_db):
        runner = WorkloadRunner(small_synthetic_db, seed=1)
        from repro.workload import WorkloadSpec, generate_workload
        other = runner.run(generate_workload(
            small_synthetic_db, WorkloadSpec(num_queries=3, seed=1)))
        databases = {executed[0].database_name: None,
                     small_synthetic_db.name: small_synthetic_db}
        with pytest.raises(ModelError, match="exactly one"):
            get_estimator(name).fit(list(executed[:3]) + other, databases)

    @pytest.mark.parametrize("name", WORKLOAD_DRIVEN)
    def test_wrong_database_at_predict_rejected(self, name, fitted,
                                                small_synthetic_db,
                                                executed):
        with pytest.raises(ModelError, match="trained on"):
            fitted[name].predict_runtime([executed[0].plan],
                                         small_synthetic_db)

    @pytest.mark.parametrize("name", WORKLOAD_DRIVEN)
    def test_load_requires_database(self, name, fitted, tmp_path):
        directory = tmp_path / name
        fitted[name].save(directory)
        with pytest.raises(ModelError, match="needs the database"):
            load_estimator(directory)


class TestCardinalityHead:
    """Cardinality-specific surface of the ``zero-shot-cardinality``
    estimator — the generic contract above already covers it via
    ``ALL_NAMES``/``available_estimators()``."""

    def test_unfitted_cardinality_predict_raises_uniform_model_error(
            self, tiny_imdb, executed):
        from repro.models import get_estimator
        estimator = get_estimator("zero-shot-cardinality")
        with pytest.raises(ModelError, match="before fit"):
            estimator.predict_cardinalities([executed[0].plan], tiny_imdb)

    def test_predicts_per_operator_arrays(self, fitted, tiny_imdb,
                                          executed):
        estimator = fitted["zero-shot-cardinality"]
        plans = [r.plan for r in executed[:6]]
        predictions = estimator.predict_cardinalities(plans, tiny_imdb)
        assert len(predictions) == len(plans)
        for plan, cards in zip(plans, predictions):
            assert cards.shape == (plan.num_nodes,)
            assert (cards >= 0).all()
        assert estimator.predict_cardinalities([], tiny_imdb) == []

    def test_per_plan_equals_batched_cardinalities(self, fitted, tiny_imdb,
                                                   executed):
        estimator = fitted["zero-shot-cardinality"]
        plans = [r.plan for r in executed[:8]]
        batched = estimator.predict_cardinalities(plans, tiny_imdb)
        for plan, expected in zip(plans, batched):
            single = estimator.predict_cardinalities([plan], tiny_imdb)[0]
            np.testing.assert_array_equal(single, expected)

    def test_save_load_preserves_cardinality_head(self, fitted, tiny_imdb,
                                                  executed, tmp_path):
        estimator = fitted["zero-shot-cardinality"]
        plans = [r.plan for r in executed[:4]]
        expected = estimator.predict_cardinalities(plans, tiny_imdb)
        directory = tmp_path / "card"
        estimator.save(directory)
        loaded = load_estimator(directory, tiny_imdb)
        assert type(loaded) is type(estimator)
        restored = loaded.predict_cardinalities(plans, tiny_imdb)
        for a, b in zip(restored, expected):
            np.testing.assert_array_equal(a, b)

    def test_headless_config_rejected(self):
        from repro.featurize.graph import CardinalitySource
        from repro.models import ZeroShotCardinalityEstimator, ZeroShotConfig
        with pytest.raises(ModelError, match="cardinality_head"):
            ZeroShotCardinalityEstimator(
                config=ZeroShotConfig(cardinality_head=False))
        from repro.models import ZeroShotCostModel
        with pytest.raises(ModelError, match="cardinality head"):
            ZeroShotCardinalityEstimator(
                model=ZeroShotCostModel(),
                source=CardinalitySource.ESTIMATED)

    def test_runtime_only_estimator_has_no_cardinality_surface(
            self, fitted, tiny_imdb, executed):
        """The plain zero-shot model must refuse cardinality prediction
        instead of silently returning something."""
        base = fitted["zero-shot"]
        with pytest.raises(ModelError, match="cardinality head"):
            base.model.predict_cardinalities(
                base.featurize([executed[0].plan], tiny_imdb))

    def test_service_serves_cardinalities(self, fitted, tiny_imdb,
                                          executed):
        from repro.serve import CostModelService
        estimator = fitted["zero-shot-cardinality"]
        plans = [r.plan for r in executed[:6]]
        service = CostModelService(estimator, tiny_imdb, max_batch_size=2)
        served = service.predict_cardinalities(plans)
        direct = estimator.predict_cardinalities(plans, tiny_imdb)
        for a, b in zip(served, direct):
            np.testing.assert_array_equal(a, b)
        # The encode cache is shared with runtime serving.
        assert service.stats.cache_misses == len(plans)
        service.predict_runtime(plans)
        assert service.stats.cache_misses == len(plans)

    def test_service_rejects_headless_estimator(self, fitted, tiny_imdb,
                                                executed):
        from repro.serve import CostModelService
        service = CostModelService(fitted["zero-shot"], tiny_imdb)
        with pytest.raises(ModelError, match="does not predict"):
            service.predict_cardinalities([executed[0].plan])

    def test_fine_tune_keeps_cardinality_surface(self, fitted, tiny_imdb,
                                                 executed):
        """Regression: fine_tune used to return the base runtime-only
        class (dropping predict_cardinalities and saving under the wrong
        manifest name) and to update the shared trunk with a
        runtime-only loss (decalibrating the frozen card readout)."""
        base = fitted["zero-shot-cardinality"]
        tuned = base.fine_tune(executed[:8], tiny_imdb, TrainerConfig(
            epochs=2, batch_size=8, validation_fraction=0.0,
            early_stopping_patience=2))
        assert type(tuned) is type(base)
        assert tuned.name == "zero-shot-cardinality"
        assert tuned.model.history is not None  # multi-task training ran
        cards = tuned.predict_cardinalities([executed[0].plan], tiny_imdb)
        assert cards[0].shape == (executed[0].plan.num_nodes,)

    def test_fine_tune_requires_cardinality_labels(self, fitted, tiny_imdb,
                                                   executed):
        """fewshot.fine_tune refuses a runtime-only update of a
        multi-task model instead of silently decalibrating it."""
        from repro.models.fewshot import fine_tune
        base = fitted["zero-shot-cardinality"]
        runtime_only = base.featurize(
            [r.plan for r in executed[:4]], tiny_imdb,
            [r.runtime_seconds for r in executed[:4]])
        with pytest.raises(ModelError, match="cardinality labels"):
            fine_tune(base.model, runtime_only)

    def test_failed_multi_task_fit_leaves_model_unfitted(self, tiny_imdb,
                                                         executed):
        """Regression: a rejected multi-task fit (missing card labels)
        must not leave scalers assigned (is_fitted True on an untrained
        net)."""
        from repro.models import ZeroShotCardinalityEstimator, ZeroShotConfig
        estimator = ZeroShotCardinalityEstimator(
            config=ZeroShotConfig(hidden_dim=16, cardinality_head=True))
        runtime_only = estimator.featurizer.featurize(
            executed[0].plan, tiny_imdb, executed[0].runtime_seconds)
        with pytest.raises(ModelError, match="cardinality labels"):
            estimator.model.fit([runtime_only])
        assert not estimator.model.is_fitted
        with pytest.raises(ModelError, match="before fit"):
            estimator.predict_runtime([executed[0].plan], tiny_imdb)


class TestZeroShotEstimator:
    def test_fine_tune_returns_new_fitted_estimator(self, fitted,
                                                    tiny_imdb, executed):
        base = fitted["zero-shot"]
        before = base.predict_runtime([executed[0].plan], tiny_imdb)
        tuned = base.fine_tune(executed[:10], tiny_imdb, TrainerConfig(
            epochs=2, batch_size=8, validation_fraction=0.0,
            early_stopping_patience=2))
        assert tuned is not base
        assert tuned.is_fitted
        # The original model is untouched by fine-tuning.
        np.testing.assert_array_equal(
            base.predict_runtime([executed[0].plan], tiny_imdb), before)

    def test_from_model_wraps_trained_model(self, fitted, tiny_imdb,
                                            executed):
        base = fitted["zero-shot"]
        wrapped = ZeroShotEstimator.from_model(base.model, base.source)
        plans = [r.plan for r in executed[:5]]
        np.testing.assert_array_equal(
            wrapped.predict_runtime(plans, tiny_imdb),
            base.predict_runtime(plans, tiny_imdb))

    def test_featurize_adapter_labels(self, fitted, tiny_imdb, executed):
        base = fitted["zero-shot"]
        plans = [r.plan for r in executed[:4]]
        runtimes = [r.runtime_seconds for r in executed[:4]]
        graphs = base.featurize(plans, tiny_imdb, runtimes)
        assert all(g.target_log_runtime is not None for g in graphs)
        with pytest.raises(ModelError, match="mismatched"):
            base.featurize(plans, tiny_imdb, runtimes[:2])
