"""Q-error metric edge cases and the driver-boundary prediction clamp."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    PREDICTION_EPSILON,
    clamp_predictions,
    q_error,
    q_error_stats,
)


class TestQError:
    def test_basic_values(self):
        errors = q_error(np.array([2.0, 0.5, 3.0]), np.array([1.0, 1.0, 3.0]))
        np.testing.assert_allclose(errors, [2.0, 2.0, 1.0])

    def test_non_positive_inputs_rejected(self):
        with pytest.raises(ModelError, match="strictly positive"):
            q_error(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ModelError, match="strictly positive"):
            q_error(np.array([1.0]), np.array([-2.0]))


class TestClampPredictions:
    def test_exp_underflow_regression(self):
        """The driver-boundary bug: ``exp`` of a very negative log
        prediction underflows to exactly 0.0, which q_error rejects —
        clamping at the boundary keeps long experiment runs alive and
        reports the prediction as astronomically bad."""
        predictions = np.exp(np.array([-1000.0, 0.0]))  # [0.0, 1.0]
        assert predictions[0] == 0.0
        with pytest.raises(ModelError):
            q_error(predictions, np.array([1.0, 1.0]))
        clamped = clamp_predictions(predictions)
        stats = q_error_stats(clamped, np.array([1.0, 1.0]))
        assert stats.maximum == 1.0 / PREDICTION_EPSILON
        assert stats.median > 1.0

    def test_positive_predictions_untouched(self):
        values = np.array([0.25, 1.0, 3e4])
        np.testing.assert_array_equal(clamp_predictions(values), values)

    def test_nan_and_negative_inputs_clamped(self):
        clamped = clamp_predictions(np.array([np.nan, -5.0, np.inf]))
        assert clamped[0] == PREDICTION_EPSILON
        assert clamped[1] == PREDICTION_EPSILON
        assert clamped[2] == np.inf

    def test_figure3_driver_survives_underflowing_estimator(self):
        """Regression: an estimator whose predictions underflow to 0.0
        must not crash the figure3 evaluation path (it used to raise
        ModelError from inside q_error)."""
        from types import SimpleNamespace

        from repro.experiments.figure3 import evaluate_zero_shot
        from repro.featurize.graph import CardinalitySource

        class Underflowing:
            def predict_runtime(self, plans, database):
                return np.exp(np.full(len(plans), -1000.0))  # exact 0.0

        records = [SimpleNamespace(plan=object(), runtime_seconds=0.01)
                   for _ in range(4)]
        context = SimpleNamespace(
            evaluation_records={"scale": records},
            imdb=None,
            estimator=lambda source: Underflowing(),
            evaluation_truths=lambda benchmark: np.full(4, 0.01),
        )
        stats = evaluate_zero_shot(context, "scale",
                                   CardinalitySource.ACTUAL)
        assert stats.maximum == 0.01 / PREDICTION_EPSILON
