"""Baseline models: MSCN, E2E, scaled optimizer cost, flat ablation, metrics."""

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.errors import ModelError
from repro.featurize import (
    CardinalitySource,
    E2EFeaturizer,
    MSCNFeaturizer,
    ZeroShotFeaturizer,
)
from repro.models import (
    E2ECostModel,
    FlatVectorCostModel,
    MSCNCostModel,
    QErrorStats,
    ScaledOptimizerCost,
    TrainerConfig,
    q_error,
    q_error_stats,
)
from repro.models.e2e import E2EConfig
from repro.models.mscn import MSCNConfig
from repro.optimizer import plan_query
from repro.runtime import RuntimeSimulator
from repro.sql import parse_query


def workload(db, count=50, seed=0):
    """(query, plan, runtime) triples on one database."""
    rng = np.random.default_rng(seed)
    simulator = RuntimeSimulator(db, rng=np.random.default_rng(seed))
    triples = []
    for _ in range(count):
        year = int(rng.integers(1950, 2020))
        choice = rng.integers(0, 3)
        if choice == 0:
            text = (f"SELECT COUNT(*) FROM title t "
                    f"WHERE t.production_year > {year}")
        elif choice == 1:
            text = (f"SELECT COUNT(*) FROM title t, cast_info ci "
                    f"WHERE t.id = ci.movie_id "
                    f"AND t.production_year > {year}")
        else:
            kind = int(rng.integers(0, 4))
            text = (f"SELECT COUNT(*) FROM title t, movie_companies mc "
                    f"WHERE t.id = mc.movie_id AND mc.company_type_id = {kind} "
                    f"AND t.production_year <= {year}")
        query = parse_query(text)
        plan = plan_query(db, query)
        execute_plan(db, plan)
        runtime = simulator.simulate(plan).total_seconds
        triples.append((query, plan, runtime))
    return triples


@pytest.fixture(scope="module")
def imdb_workload(tiny_imdb_module):
    return workload(tiny_imdb_module, count=60, seed=3)


@pytest.fixture(scope="module")
def tiny_imdb_module():
    from repro.db import make_imdb_database
    return make_imdb_database(scale=0.04, seed=7)


def trainer(epochs=40):
    return TrainerConfig(epochs=epochs, batch_size=16,
                         early_stopping_patience=epochs, seed=0)


class TestMSCNModel:
    def test_learns_workload(self, tiny_imdb_module, imdb_workload):
        queries = [q for q, _, _ in imdb_workload]
        featurizer = MSCNFeaturizer(tiny_imdb_module).fit(queries)
        samples = [featurizer.featurize(q, r) for q, _, r in imdb_workload]
        model = MSCNCostModel(featurizer, MSCNConfig(hidden_dim=32))
        history = model.fit(samples, trainer())
        assert history.train_losses[-1] < history.train_losses[0]
        predictions = model.predict_runtime(samples)
        truths = np.array([r for _, _, r in imdb_workload])
        assert q_error_stats(predictions, truths).median < 2.5

    def test_unfitted_featurizer_rejected(self, tiny_imdb_module):
        with pytest.raises(ModelError):
            MSCNCostModel(MSCNFeaturizer(tiny_imdb_module))

    def test_unlabelled_samples_rejected(self, tiny_imdb_module, imdb_workload):
        queries = [q for q, _, _ in imdb_workload]
        featurizer = MSCNFeaturizer(tiny_imdb_module).fit(queries)
        samples = [featurizer.featurize(queries[0])]
        model = MSCNCostModel(featurizer)
        with pytest.raises(ModelError):
            model.fit(samples)

    def test_partially_labelled_batch_rejected(self, tiny_imdb_module,
                                               imdb_workload):
        from repro.models.mscn import collate_mscn
        queries = [q for q, _, _ in imdb_workload]
        featurizer = MSCNFeaturizer(tiny_imdb_module).fit(queries)
        labelled = featurizer.featurize(queries[0], 0.5)
        unlabelled = featurizer.featurize(queries[1])
        with pytest.raises(ModelError, match="missing runtime"):
            collate_mscn([labelled, unlabelled])


class TestE2EModel:
    def test_learns_workload(self, tiny_imdb_module, imdb_workload):
        plans = [p for _, p, _ in imdb_workload]
        featurizer = E2EFeaturizer(tiny_imdb_module).fit(plans)
        samples = [featurizer.featurize(p, r) for _, p, r in imdb_workload]
        model = E2ECostModel(featurizer, E2EConfig(hidden_dim=32))
        history = model.fit(samples, trainer())
        assert history.train_losses[-1] < history.train_losses[0]
        predictions = model.predict_runtime(samples)
        truths = np.array([r for _, _, r in imdb_workload])
        assert q_error_stats(predictions, truths).median < 2.0

    def test_unfitted_featurizer_rejected(self, tiny_imdb_module):
        with pytest.raises(ModelError):
            E2ECostModel(E2EFeaturizer(tiny_imdb_module))


class TestScaledOptimizerCost:
    def test_perfect_linear_relation(self):
        costs = np.array([10.0, 20.0, 30.0, 40.0])
        runtimes = 0.01 * costs + 0.5
        model = ScaledOptimizerCost().fit(costs, runtimes)
        np.testing.assert_allclose(model.predict_runtime(costs), runtimes,
                                   rtol=1e-9)

    def test_on_real_workload(self, tiny_imdb_module, imdb_workload):
        costs = np.array([p.total_cost for _, p, _ in imdb_workload])
        runtimes = np.array([r for _, _, r in imdb_workload])
        model = ScaledOptimizerCost().fit(costs, runtimes)
        stats = q_error_stats(model.predict_runtime(costs), runtimes)
        assert stats.median < 5.0  # informative, but imperfect

    def test_predictions_positive(self):
        model = ScaledOptimizerCost().fit(np.array([1.0, 2.0]),
                                          np.array([1.0, 0.5]))
        assert (model.predict_runtime(np.array([1e9])) > 0).all()

    def test_validation(self):
        with pytest.raises(ModelError):
            ScaledOptimizerCost().fit(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ModelError):
            ScaledOptimizerCost().fit(np.array([1.0, 2.0]),
                                      np.array([1.0, -1.0]))
        with pytest.raises(ModelError):
            ScaledOptimizerCost().predict_runtime(np.array([1.0]))


class TestFlatAblation:
    def test_learns_but_structure_helps(self, tiny_imdb_module, imdb_workload):
        featurizer = ZeroShotFeaturizer(CardinalitySource.ACTUAL)
        graphs = [featurizer.featurize(p, tiny_imdb_module, r)
                  for _, p, r in imdb_workload]
        model = FlatVectorCostModel(seed=0)
        history = model.fit(graphs, trainer())
        assert history.train_losses[-1] < history.train_losses[0]
        predictions = model.predict_runtime(graphs)
        truths = np.array([r for _, _, r in imdb_workload])
        assert q_error_stats(predictions, truths).median < 3.0

    def test_validation(self):
        with pytest.raises(ModelError):
            FlatVectorCostModel().fit([])
        with pytest.raises(ModelError):
            FlatVectorCostModel().predict_runtime([])


class TestMetrics:
    def test_q_error_basics(self):
        errors = q_error(np.array([2.0, 0.5, 1.0]), np.array([1.0, 1.0, 1.0]))
        np.testing.assert_allclose(errors, [2.0, 2.0, 1.0])

    def test_q_error_symmetry(self):
        a = np.array([3.0])
        b = np.array([1.0])
        assert q_error(a, b) == q_error(b, a)

    def test_q_error_positive_required(self):
        with pytest.raises(ModelError):
            q_error(np.array([0.0]), np.array([1.0]))

    def test_q_error_shape_mismatch(self):
        with pytest.raises(ModelError):
            q_error(np.array([1.0]), np.array([1.0, 2.0]))

    def test_stats_row(self):
        stats = q_error_stats(np.array([1.0, 2.0, 4.0]),
                              np.array([1.0, 1.0, 1.0]))
        assert isinstance(stats, QErrorStats)
        median, p95, maximum = stats.row()
        assert median == 2.0
        assert maximum == 4.0
        assert p95 <= maximum

    def test_stats_empty_rejected(self):
        with pytest.raises(ModelError):
            q_error_stats(np.array([]), np.array([]))
