"""Cross-module integration and property tests.

The key invariant of the whole substrate: *every* physical plan for a
query computes the same result — join strategy, join order and access
paths change the cost, never the answer.  Hypothesis drives the workload
generator over a small database and checks this end to end, plus
structural invariants of the plans and the featurization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.engine import Executor, execute_plan
from repro.featurize import CardinalitySource, ZeroShotFeaturizer, batch_graphs
from repro.optimizer import plan_query
from repro.optimizer.planner import PlannerOptions
from repro.plans import explain_plan
from repro.runtime import RuntimeSimulator
from repro.sql import parse_query, query_to_sql, validate_query
from repro.workload import WorkloadSpec, generate_workload

# One shared small database for all property tests (module-level so
# hypothesis examples do not regenerate it).
_DB = generate_database(SyntheticDatabaseSpec(
    name="prop", seed=2024, num_tables=4, min_rows=200, max_rows=1_500,
))
_DB.create_index("rnd0", "t1", "t0_id")

_PLAN_VARIANTS = (
    PlannerOptions(),
    PlannerOptions(enable_hashjoin=False),
    PlannerOptions(enable_mergejoin=False, enable_nestloop=False),
    PlannerOptions(enable_indexscan=False),
)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_all_plans_agree_on_count(seed):
    """Property: every plan variant returns the same COUNT(*)."""
    query = generate_workload(_DB, WorkloadSpec(
        num_queries=1, seed=seed, count_star_probability=1.0,
        group_by_probability=0.0,
    ))[0]
    results = set()
    for options in _PLAN_VARIANTS:
        plan = plan_query(_DB, query, options)
        results.add(execute_plan(_DB, plan).scalar())
    assert len(results) == 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sql_roundtrip_preserves_semantics(seed):
    """Property: to-SQL then parse yields an equivalent query."""
    query = generate_workload(_DB, WorkloadSpec(num_queries=1, seed=seed))[0]
    reparsed = parse_query(query_to_sql(query))
    validate_query(_DB.schema, reparsed)
    plan_a = plan_query(_DB, query)
    plan_b = plan_query(_DB, reparsed)
    count_a = execute_plan(_DB, plan_a).root_rows
    count_b = execute_plan(_DB, plan_b).root_rows
    assert count_a == count_b


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cumulative_cost_monotone_towards_root(seed):
    """Property: the optimizer's cumulative cost never decreases from
    child to parent (it includes the children's costs)."""
    query = generate_workload(_DB, WorkloadSpec(num_queries=1, seed=seed))[0]
    plan = plan_query(_DB, query)
    for node in plan.nodes():
        for child in node.children:
            assert node.est_cost >= child.est_cost - 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_featurization_and_simulation_total_pipeline(seed):
    """Property: plan -> execute -> simulate -> featurize never fails and
    produces consistent graph structure for generated queries."""
    query = generate_workload(_DB, WorkloadSpec(num_queries=1, seed=seed))[0]
    plan = plan_query(_DB, query)
    execute_plan(_DB, plan)
    runtime = RuntimeSimulator(_DB, noise_sigma=0.0).simulate(plan)
    assert runtime.total_seconds > 0
    graph = ZeroShotFeaturizer(CardinalitySource.ACTUAL).featurize(
        plan, _DB, runtime.total_seconds
    )
    ops = sum(1 for t in graph.node_type_of if t == "plan_op")
    assert ops == plan.num_nodes
    batch = batch_graphs([graph])
    assert batch.num_nodes == graph.num_nodes


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_estimates_are_finite_and_positive(seed):
    query = generate_workload(_DB, WorkloadSpec(num_queries=1, seed=seed))[0]
    plan = plan_query(_DB, query)
    for node in plan.nodes():
        assert np.isfinite(node.est_rows) and node.est_rows >= 0
        assert np.isfinite(node.est_cost) and node.est_cost >= 0
        assert np.isfinite(node.est_width) and node.est_width > 0


class TestExplainOutput:
    def test_explain_contains_all_operators(self, tiny_imdb):
        plan = plan_query(tiny_imdb, parse_query(
            "SELECT COUNT(*) FROM title t, cast_info ci "
            "WHERE t.id = ci.movie_id AND ci.role_id = 1"
        ))
        text = explain_plan(plan)
        assert "Aggregate" in text
        assert "Join" in text
        assert "est_rows" in text
        execute_plan(tiny_imdb, plan)
        analyzed = explain_plan(plan)
        assert "actual_rows" in analyzed

    def test_explain_accepts_bare_nodes(self, tiny_imdb):
        plan = plan_query(tiny_imdb, parse_query("SELECT COUNT(*) FROM title t"))
        assert explain_plan(plan.root)


class TestDeterminismEndToEnd:
    def test_full_pipeline_bitwise_deterministic(self):
        """Two identical runs of generate->plan->execute->simulate->
        featurize produce identical labels and features."""
        outputs = []
        for _ in range(2):
            db = generate_database(SyntheticDatabaseSpec(
                name="det", seed=5, num_tables=3, min_rows=200, max_rows=800,
            ))
            queries = generate_workload(db, WorkloadSpec(num_queries=5, seed=9))
            simulator = RuntimeSimulator(db, rng=np.random.default_rng(1))
            run = []
            featurizer = ZeroShotFeaturizer(CardinalitySource.ACTUAL)
            for query in queries:
                plan = plan_query(db, query)
                Executor(db).execute(plan)
                runtime = simulator.simulate(plan)
                graph = featurizer.featurize(plan, db, runtime.total_seconds)
                run.append((runtime.total_seconds,
                            graph.feature_matrix("plan_op").sum()))
            outputs.append(run)
        for (rt_a, f_a), (rt_b, f_b) in zip(*outputs):
            assert rt_a == rt_b
            assert f_a == f_b
