"""Layers, modules, optimizers, schedules, data helpers, serialization."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    BatchIterator,
    ConstantSchedule,
    CosineSchedule,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    SGD,
    Sequential,
    StepSchedule,
    Tensor,
    clip_grad_norm,
    load_state,
    save_state,
    train_validation_split,
)
from repro.nn import functional as F


def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng())
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, rng(), bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_bad_init_name(self):
        with pytest.raises(ValueError):
            Linear(4, 3, rng(), init="nope")

    def test_gradients_flow(self):
        layer = Linear(4, 1, rng())
        out = layer(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP(6, [8, 8], 1, rng())
        out = mlp(Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 1)

    def test_empty_hidden_is_linear(self):
        mlp = MLP(6, [], 2, rng())
        assert len(mlp.body) == 1

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(4, [4], 1, rng(), activation="swish999")

    def test_layer_norm_variant(self):
        mlp = MLP(4, [8], 1, rng(), layer_norm=True)
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(3, 4))))
        assert out.shape == (3, 1)

    def test_can_fit_linear_function(self):
        """An MLP trained with Adam should fit y = 2x + 1 closely."""
        generator = np.random.default_rng(3)
        x = generator.uniform(-1, 1, size=(256, 1))
        y = 2.0 * x + 1.0
        mlp = MLP(1, [16], 1, rng())
        optimizer = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(300):
            optimizer.zero_grad()
            loss = F.mse_loss(mlp(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
        final = F.mse_loss(mlp(Tensor(x)), Tensor(y)).item()
        assert final < 1e-3


class TestDropoutAndNorm:
    def test_dropout_off_in_eval(self):
        layer = Dropout(0.5, rng())
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_dropout_scales_in_train(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        out = layer(Tensor(np.ones((1000, 10))))
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, rng())

    def test_layer_norm_statistics(self):
        layer = LayerNorm(16)
        x = Tensor(np.random.default_rng(1).normal(3.0, 5.0, size=(4, 16)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestOptimizers:
    @staticmethod
    def _quadratic_param():
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, 0.0, atol=1e-4)

    def test_adam_converges_on_quadratic(self):
        param = self._quadratic_param()
        optimizer = Adam([param], lr=0.1)
        for _ in range(500):
            optimizer.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, 0.0, atol=1e-3)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert abs(param.data[0]) < 1.0

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_clip_grad_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        before = clip_grad_norm([param], max_norm=1.0)
        assert before == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(100) == 0.1

    def test_step(self):
        schedule = StepSchedule(1.0, step_size=10, gamma=0.5)
        assert schedule(0) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(1.0, total_epochs=100, lr_min=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(50) == pytest.approx(0.55)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            StepSchedule(1.0, step_size=0)
        with pytest.raises(ValueError):
            CosineSchedule(1.0, total_epochs=0)


class TestDataHelpers:
    def test_batch_iterator_covers_all(self):
        items = list(range(10))
        batches = list(BatchIterator(items, batch_size=3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert sorted(x for b in batches for x in b) == items

    def test_batch_iterator_shuffles(self):
        items = list(range(100))
        flat = [x for b in BatchIterator(items, 10, rng=np.random.default_rng(0)) for x in b]
        assert flat != items
        assert sorted(flat) == items

    def test_batch_iterator_len(self):
        assert len(BatchIterator(list(range(10)), 4)) == 3

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            BatchIterator([1], 0)

    def test_split_fractions(self):
        train, val = train_validation_split(list(range(100)), 0.2, np.random.default_rng(0))
        assert len(val) == 20
        assert len(train) == 80
        assert sorted(train + val) == list(range(100))

    def test_split_zero_fraction(self):
        train, val = train_validation_split([1, 2, 3], 0.0, np.random.default_rng(0))
        assert val == []
        assert sorted(train) == [1, 2, 3]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            train_validation_split([1], 1.0, np.random.default_rng(0))


class TestModuleMechanics:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(2, 3, rng()), Linear(3, 1, rng()))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer1.bias" in names

    def test_num_parameters(self):
        layer = Linear(4, 3, rng())
        assert layer.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self, tmp_path):
        model = MLP(4, [8], 1, rng())
        reference = model(Tensor(np.ones((2, 4)))).data.copy()
        path = tmp_path / "weights.npz"
        save_state(model, path)
        other = MLP(4, [8], 1, np.random.default_rng(99))
        load_state(other, path)
        np.testing.assert_allclose(other(Tensor(np.ones((2, 4)))).data, reference)

    def test_load_state_dict_mismatch(self):
        a = Linear(2, 2, rng())
        b = Linear(3, 2, rng())
        with pytest.raises((KeyError, ValueError)):
            a.load_state_dict({"nope": np.zeros(1)})
        with pytest.raises(ValueError):
            a.load_state_dict({"weight": np.zeros((3, 2)), "bias": np.zeros(2)})
        del b

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5, rng()))
        model.eval()
        assert not next(iter(model)).training
        model.train()
        assert next(iter(model)).training


class TestLosses:
    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mae(self):
        loss = F.mae_loss(Tensor([1.0, -2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_q_loss_is_symmetric(self):
        a = Tensor([1.0])
        b = Tensor([3.0])
        assert F.q_loss(a, b).item() == pytest.approx(F.q_loss(b, a).item())

    def test_huber_quadratic_near_zero(self):
        small = F.huber_loss(Tensor([0.01]), Tensor([0.0])).item()
        assert small == pytest.approx(0.5 * 0.01 ** 2, rel=1e-2)

    def test_softplus_positive(self):
        out = F.softplus(Tensor([-100.0, 0.0, 100.0]))
        assert (out.data >= 0).all()
        assert out.data[2] == pytest.approx(100.0, rel=1e-6)
