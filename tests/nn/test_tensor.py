"""Autograd correctness: analytic gradients vs central finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, no_grad


def numerical_gradient(fn, array, eps=1e-6):
    """Central finite-difference gradient of scalar fn wrt array."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn()
        flat[i] = original - eps
        down = fn()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, arrays, atol=1e-5):
    """build(tensors) -> scalar Tensor; arrays are numpy inputs."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = build(tensors)
    out.backward()
    for tensor in tensors:
        # finite differences mutate tensor.data in place
        num = numerical_gradient(lambda: _eval(build, tensors), tensor.data)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, num, atol=atol, rtol=1e-4)


def _eval(build, tensors):
    with no_grad():
        return build(tensors).item()


RNG = np.random.default_rng(0)


class TestElementaryOps:
    def test_add_broadcast(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4,))
        check_gradient(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_mul_broadcast(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(2, 1))
        check_gradient(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_sub_and_neg(self):
        a = RNG.normal(size=(5,))
        b = RNG.normal(size=(5,))
        check_gradient(lambda ts: (ts[0] - ts[1]).sum(), [a, b])

    def test_div(self):
        a = RNG.normal(size=(4,))
        b = RNG.uniform(1.0, 2.0, size=(4,))
        check_gradient(lambda ts: (ts[0] / ts[1]).sum(), [a, b])

    def test_pow(self):
        a = RNG.uniform(0.5, 2.0, size=(4,))
        check_gradient(lambda ts: (ts[0] ** 3).sum(), [a])

    def test_matmul(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        check_gradient(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_scalar_rsub_rdiv(self):
        a = RNG.uniform(1.0, 2.0, size=(3,))
        check_gradient(lambda ts: (1.0 - ts[0]).sum(), [a])
        check_gradient(lambda ts: (1.0 / ts[0]).sum(), [a])


class TestNonlinearities:
    def test_exp_log(self):
        a = RNG.uniform(0.5, 1.5, size=(6,))
        check_gradient(lambda ts: ts[0].exp().sum(), [a])
        check_gradient(lambda ts: ts[0].log().sum(), [a])

    def test_relu(self):
        a = RNG.normal(size=(10,)) + 0.05  # avoid kink at 0
        check_gradient(lambda ts: ts[0].relu().sum(), [a])

    def test_leaky_relu(self):
        a = RNG.normal(size=(10,)) + 0.05
        check_gradient(lambda ts: ts[0].leaky_relu(0.1).sum(), [a])

    def test_sigmoid_tanh(self):
        a = RNG.normal(size=(6,))
        check_gradient(lambda ts: ts[0].sigmoid().sum(), [a])
        check_gradient(lambda ts: ts[0].tanh().sum(), [a])

    def test_abs(self):
        a = RNG.normal(size=(8,)) + 0.1
        check_gradient(lambda ts: ts[0].abs().sum(), [a])

    def test_clip(self):
        a = np.array([-2.0, -0.5, 0.5, 2.0])
        check_gradient(lambda ts: ts[0].clip(-1.0, 1.0).sum(), [a])


class TestReductionsAndShapes:
    def test_sum_axis(self):
        a = RNG.normal(size=(3, 4))
        check_gradient(lambda ts: (ts[0].sum(axis=0) ** 2).sum(), [a])

    def test_mean(self):
        a = RNG.normal(size=(3, 4))
        check_gradient(lambda ts: (ts[0].mean(axis=1) ** 2).sum(), [a])

    def test_mean_keepdims(self):
        a = RNG.normal(size=(3, 4))
        check_gradient(lambda ts: (ts[0] - ts[0].mean(axis=1, keepdims=True)).abs().sum(), [a])

    def test_reshape_transpose(self):
        a = RNG.normal(size=(3, 4))
        check_gradient(lambda ts: (ts[0].reshape(4, 3).T ** 2).sum(), [a])

    def test_getitem(self):
        a = RNG.normal(size=(5, 3))
        check_gradient(lambda ts: (ts[0][1:4] ** 2).sum(), [a])

    def test_index_select_with_duplicates(self):
        a = RNG.normal(size=(4, 3))
        idx = np.array([0, 0, 2, 3, 3, 3])
        check_gradient(lambda ts: (ts[0].index_select(idx) ** 2).sum(), [a])

    def test_concat(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(4, 3))
        check_gradient(lambda ts: (Tensor.concat([ts[0], ts[1]], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(2, 2))
        check_gradient(lambda ts: (Tensor.concat([ts[0], ts[1]], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a = RNG.normal(size=(3,))
        b = RNG.normal(size=(3,))
        check_gradient(lambda ts: (Tensor.stack([ts[0], ts[1]]) ** 2).sum(), [a, b])

    def test_scatter_add(self):
        a = RNG.normal(size=(6, 2))
        idx = np.array([0, 1, 1, 2, 2, 2])
        check_gradient(lambda ts: (ts[0].scatter_add(idx, 3) ** 2).sum(), [a])

    def test_max(self):
        a = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        check_gradient(lambda ts: ts[0].max(axis=1).sum(), [a])


class TestGraphMechanics:
    def test_reused_tensor_accumulates(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a  # dy/da = 2a + 1 = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        out = (b + c).sum()  # d/da = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_deep_chain(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(200):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_no_grad_blocks_recording(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_detach(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_dtype_coercion(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.data.dtype == np.float64

    def test_scatter_add_length_mismatch(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((3, 2))).scatter_add(np.array([0, 1]), 2)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=6),
    cols=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_sum_then_broadcast_roundtrip(rows, cols, seed):
    """Property: grad of (x + b).sum() wrt b equals the row count."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(rows, cols)))
    b = Tensor(rng.normal(size=(cols,)), requires_grad=True)
    (x + b).sum().backward()
    np.testing.assert_allclose(b.grad, np.full(cols, rows))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    buckets=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_scatter_add_preserves_total(n, buckets, seed):
    """Property: scatter_add preserves the column sums."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    idx = rng.integers(0, buckets, size=n)
    out = Tensor(x).scatter_add(idx, buckets)
    np.testing.assert_allclose(out.data.sum(axis=0), x.sum(axis=0), atol=1e-9)
