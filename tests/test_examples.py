"""Examples smoke-test: documented entry points must stay runnable.

Runs the README's two headline examples in-process (not via a
subprocess, so coverage and import errors surface normally).  The
examples train real models on small fleets, so these are the slowest
tier-1 tests — but they are exactly what a new user runs first.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_quickstart_runs(capsys):
    _load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "Zero-shot Q-errors on the unseen database" in out
    assert "Sample predictions" in out


def test_plan_selection_runs(capsys):
    _load_example("plan_selection").main()
    out = capsys.readouterr().out
    assert "plans changed by the learned selector" in out
    assert "workload runtime, zero-shot selection" in out
