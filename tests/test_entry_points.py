"""Console entry points: every declared script must resolve to a real
callable, and every experiment driver must be exposed as a script.

``pip install`` is unavailable in the offline test environment, so the
declarations in ``setup.py`` are parsed textually and resolved against
the live package instead of via ``importlib.metadata``.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``name = module:function`` inside the console_scripts block.
_ENTRY = re.compile(r'"([\w-]+)\s*=\s*([\w.]+):(\w+)"')

EXPECTED_SCRIPTS = {
    "repro-cache": "repro.experiments.cache",
    "repro-cardinality": "repro.experiments.cardinality_exp",
    "repro-figure3": "repro.experiments.figure3",
    "repro-table1": "repro.experiments.table1",
    "repro-learning-curve": "repro.experiments.learning_curve",
    "repro-fewshot": "repro.experiments.fewshot_exp",
    "repro-ablations": "repro.experiments.ablations",
    "repro-resources": "repro.experiments.resources",
    "repro-hardware": "repro.experiments.hardware",
    "repro-profile": "repro.experiments.profile",
}


def _declared_scripts() -> dict[str, tuple[str, str]]:
    text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
    return {name: (module, function)
            for name, module, function in _ENTRY.findall(text)}


def test_all_experiment_drivers_have_scripts():
    declared = _declared_scripts()
    for script, module in EXPECTED_SCRIPTS.items():
        assert script in declared, f"setup.py lacks {script}"
        assert declared[script][0] == module


@pytest.mark.parametrize("script,target", sorted(_declared_scripts().items()))
def test_declared_targets_resolve(script, target):
    module_name, function_name = target
    module = importlib.import_module(module_name)
    function = getattr(module, function_name)
    assert callable(function), f"{script} -> {module_name}:{function_name}"
