"""Golden-snapshot regression tests for the logical rewrite phase.

The rewritten output of a fixed seed query set is frozen on disk
(``tests/optimizer/goldens/rewritten-plans.json``): the SQL text, the
rewritten logical tree, the rule-firing trace and the EXPLAIN of the
physical plan built from it.  Any change to a rule, to the rule
application order, or to the lowering silently changes every rewritten
plan; these tests make such drifts fail loudly instead.

If a rewrite change is *intentional*, regenerate the snapshot and
commit it together with the change::

    PYTHONPATH=src python tests/optimizer/test_rewrite_goldens.py --regen
"""

import json
import sys
from pathlib import Path

import pytest

from repro.db import make_imdb_database
from repro.optimizer import Planner, PlannerOptions, available_rewrite_rules
from repro.optimizer.rewrite import RewritePlanner, logical_plan_repr
from repro.plans.explain import explain_plan
from repro.workload import make_benchmark_workload

pytestmark = pytest.mark.rewrite

GOLDEN_PATH = (Path(__file__).resolve().parent / "goldens" /
               "rewritten-plans.json")

REGEN_HINT = (
    "rewrite output changed; if intentional, regenerate the snapshot "
    "with `PYTHONPATH=src python tests/optimizer/test_rewrite_goldens.py "
    "--regen` and commit it with the rewrite change"
)


def _seed_snapshot() -> list[dict]:
    """The frozen query set: fully deterministic in its seeds."""
    database = make_imdb_database(scale=0.04, seed=7)
    queries = []
    for name in ("scale", "job-light", "synthetic"):
        queries.extend(make_benchmark_workload(database, name, 4, seed=13))
    rewriter = RewritePlanner(schema=database.schema)
    planner = Planner(database, PlannerOptions(enable_rewrites=True))
    entries = []
    for query in queries:
        result = rewriter.rewrite(query)
        plan = planner.plan(query)
        trace = plan.metadata["rewrite_trace"]
        entries.append({
            "sql": str(query),
            "logical_plan": logical_plan_repr(result.logical_plan),
            "rules_fired": list(trace.rules_fired),
            "nodes_before": trace.nodes_before,
            "nodes_after": trace.nodes_after,
            "scan_columns": {alias: list(cols) for alias, cols
                             in sorted(result.scan_columns.items())},
            "physical_plan": explain_plan(plan),
        })
    return entries


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    entries = _seed_snapshot()
    GOLDEN_PATH.write_text(json.dumps(entries, indent=2, sort_keys=True) +
                           "\n")
    print(f"wrote {GOLDEN_PATH} ({len(entries)} queries)")


def test_rewrites_match_golden_snapshot():
    assert GOLDEN_PATH.is_file(), \
        f"golden snapshot {GOLDEN_PATH} is missing; {REGEN_HINT}"
    golden = json.loads(GOLDEN_PATH.read_text())
    fresh = _seed_snapshot()
    assert len(golden) == len(fresh), f"query count drifted; {REGEN_HINT}"
    for index, (want, got) in enumerate(zip(golden, fresh)):
        assert want.keys() == got.keys(), \
            f"q{index}: snapshot key set drifted; {REGEN_HINT}"
        for key in want:
            assert want[key] == got[key], (
                f"q{index} ({want['sql']}): {key} drifted from the golden "
                f"snapshot;\n--- golden ---\n{want[key]}\n--- fresh ---\n"
                f"{got[key]}\n{REGEN_HINT}"
            )


def test_goldens_are_nontrivial():
    """Guard against freezing an empty or degenerate query set."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert len(golden) == 12
    fired = {rule for entry in golden for rule in entry["rules_fired"]}
    # Every registered rule must be exercised by the frozen set.
    assert fired >= set(available_rewrite_rules())
    # Rewrites actually reshape the tree somewhere (not a no-op set).
    assert any(entry["nodes_before"] != entry["nodes_after"]
               for entry in golden)
    assert any(entry["scan_columns"] for entry in golden)


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        sys.exit(1)
