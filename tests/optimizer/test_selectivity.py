"""Selectivity estimation against ground truth on known data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, DataType, Table, TableData, analyze_table
from repro.optimizer.selectivity import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    estimate_predicate_selectivity,
)
from repro.sql.ast import ColumnRef, ComparisonOperator, Predicate


def stats_for(values, null_mask=None):
    table = Table("t", (Column("v", DataType.INTEGER),))
    data = TableData(table=table,
                     columns={"v": np.asarray(values, dtype=np.int64)},
                     null_masks={"v": null_mask} if null_mask is not None else {})
    return analyze_table(data).column("v")


def pred(op, value):
    return Predicate(ColumnRef("t", "v"), op, value)


class TestEquality:
    def test_uniform_equality(self):
        stats = stats_for(list(range(100)) * 10)
        sel = estimate_predicate_selectivity(stats, pred(ComparisonOperator.EQ, 42.0))
        assert sel == pytest.approx(0.01, rel=0.3)

    def test_mcv_equality_exact(self):
        values = np.concatenate([np.zeros(500), np.arange(1, 501)])
        stats = stats_for(values)
        sel = estimate_predicate_selectivity(stats, pred(ComparisonOperator.EQ, 0.0))
        assert sel == pytest.approx(0.5, rel=0.02)

    def test_out_of_domain_equality(self):
        stats = stats_for(range(100))
        sel = estimate_predicate_selectivity(stats,
                                             pred(ComparisonOperator.EQ, 5000.0))
        assert sel < 1e-4

    def test_neq_complements(self):
        values = np.concatenate([np.zeros(500), np.arange(1, 501)])
        stats = stats_for(values)
        eq = estimate_predicate_selectivity(stats, pred(ComparisonOperator.EQ, 0.0))
        neq = estimate_predicate_selectivity(stats, pred(ComparisonOperator.NEQ, 0.0))
        assert eq + neq == pytest.approx(1.0, abs=0.05)

    def test_in_sums(self):
        stats = stats_for(list(range(10)) * 100)
        sel = estimate_predicate_selectivity(
            stats, pred(ComparisonOperator.IN, (0.0, 1.0, 2.0)))
        assert sel == pytest.approx(0.3, rel=0.1)


class TestRanges:
    def test_uniform_range(self):
        stats = stats_for(range(1000))
        sel = estimate_predicate_selectivity(
            stats, pred(ComparisonOperator.BETWEEN, (250.0, 750.0)))
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_lt_gt_partition(self):
        stats = stats_for(range(1000))
        lt = estimate_predicate_selectivity(stats, pred(ComparisonOperator.LT, 300.0))
        geq = estimate_predicate_selectivity(stats, pred(ComparisonOperator.GEQ, 300.0))
        assert lt + geq == pytest.approx(1.0, abs=0.05)

    def test_null_fraction_discounts_range(self):
        nulls = np.zeros(1000, dtype=bool)
        nulls[:500] = True
        stats = stats_for(range(1000), null_mask=nulls)
        sel = estimate_predicate_selectivity(stats, pred(ComparisonOperator.GT, -1.0))
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_skewed_range(self):
        rng = np.random.default_rng(0)
        values = (rng.exponential(100, size=10_000)).astype(np.int64)
        stats = stats_for(values)
        true = float((values <= 50).mean())
        est = estimate_predicate_selectivity(stats, pred(ComparisonOperator.LEQ, 50.0))
        assert est == pytest.approx(true, abs=0.05)


class TestDefaults:
    def test_no_stats_defaults(self):
        assert estimate_predicate_selectivity(
            None, pred(ComparisonOperator.EQ, 1.0)) == DEFAULT_EQ_SELECTIVITY
        assert estimate_predicate_selectivity(
            None, pred(ComparisonOperator.GT, 1.0)) == DEFAULT_RANGE_SELECTIVITY

    def test_selectivity_bounds(self):
        stats = stats_for(range(10))
        for op, value in [(ComparisonOperator.EQ, 3.0),
                          (ComparisonOperator.LT, 100.0),
                          (ComparisonOperator.GT, -100.0),
                          (ComparisonOperator.IN, tuple(float(i) for i in range(10)))]:
            sel = estimate_predicate_selectivity(stats, pred(op, value))
            assert 0.0 < sel <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    low_q=st.floats(min_value=0.0, max_value=0.45),
    width_q=st.floats(min_value=0.05, max_value=0.5),
)
def test_between_close_to_truth_on_uniform(seed, low_q, width_q):
    """Property: on uniform data the histogram estimate tracks the truth."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 10_000, size=5_000)
    stats = stats_for(values)
    low = float(np.quantile(values, low_q))
    high = float(np.quantile(values, min(low_q + width_q, 1.0)))
    true = float(((values >= low) & (values <= high)).mean())
    est = estimate_predicate_selectivity(
        stats, pred(ComparisonOperator.BETWEEN, (low, high)))
    assert abs(est - true) < 0.1
