"""Zero-shot plan selection (§4.2): candidate generation and choice."""

import pytest

from repro.errors import ModelError
from repro.featurize import CardinalitySource
from repro.models import TrainerConfig, ZeroShotConfig, ZeroShotCostModel
from repro.optimizer.learned_planner import (
    ZeroShotPlanSelector,
    candidate_plans,
)
from repro.sql import parse_query

from tests.models.conftest import build_labelled_graphs


JOIN_QUERY = ("SELECT COUNT(*) FROM title t, cast_info ci "
              "WHERE t.id = ci.movie_id AND t.production_year > 2000")


class TestCandidateGeneration:
    def test_candidates_are_distinct_plans(self, tiny_imdb):
        plans = candidate_plans(tiny_imdb, parse_query(JOIN_QUERY))
        assert len(plans) >= 2
        labels = {tuple(n.label() for n in p.nodes()) for p in plans}
        assert len(labels) == len(plans)  # de-duplicated

    def test_first_candidate_is_classical_optimum(self, tiny_imdb):
        from repro.optimizer import plan_query
        plans = candidate_plans(tiny_imdb, parse_query(JOIN_QUERY))
        classical = plan_query(tiny_imdb, parse_query(JOIN_QUERY))
        assert [n.label() for n in plans[0].nodes()] == \
            [n.label() for n in classical.nodes()]

    def test_single_table_query(self, tiny_imdb):
        plans = candidate_plans(
            tiny_imdb, parse_query("SELECT COUNT(*) FROM title t "
                                   "WHERE t.id < 100"))
        assert len(plans) >= 1


class TestSelector:
    @pytest.fixture(scope="class")
    def model(self, tiny_imdb):
        graphs = build_labelled_graphs([tiny_imdb], 50,
                                       CardinalitySource.ESTIMATED, seed=5)
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=0))
        model.fit(graphs, TrainerConfig(epochs=25, batch_size=32,
                                        early_stopping_patience=25))
        return model

    def test_choice_structure(self, tiny_imdb, model):
        selector = ZeroShotPlanSelector(tiny_imdb, model)
        choice = selector.choose(parse_query(JOIN_QUERY))
        assert choice.num_candidates >= 2
        assert choice.predicted_seconds > 0
        assert len(choice.predictions) == choice.num_candidates
        assert choice.predicted_seconds == min(choice.predictions)

    def test_unfitted_model_rejected(self, tiny_imdb):
        with pytest.raises(ModelError):
            ZeroShotPlanSelector(tiny_imdb, ZeroShotCostModel())
