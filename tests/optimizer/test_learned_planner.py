"""Zero-shot plan selection (§4.2): candidate generation and choice."""

import pytest

from repro.errors import ModelError
from repro.featurize import CardinalitySource
from repro.models import TrainerConfig, ZeroShotConfig, ZeroShotCostModel
from repro.optimizer.learned_planner import (
    ZeroShotPlanSelector,
    candidate_plans,
)
from repro.sql import parse_query

from tests.models.conftest import build_labelled_graphs


JOIN_QUERY = ("SELECT COUNT(*) FROM title t, cast_info ci "
              "WHERE t.id = ci.movie_id AND t.production_year > 2000")


class TestCandidateGeneration:
    def test_candidates_are_distinct_plans(self, tiny_imdb):
        plans = candidate_plans(tiny_imdb, parse_query(JOIN_QUERY))
        assert len(plans) >= 2
        labels = {tuple(n.label() for n in p.nodes()) for p in plans}
        assert len(labels) == len(plans)  # de-duplicated

    def test_first_candidate_is_classical_optimum(self, tiny_imdb):
        from repro.optimizer import plan_query
        plans = candidate_plans(tiny_imdb, parse_query(JOIN_QUERY))
        classical = plan_query(tiny_imdb, parse_query(JOIN_QUERY))
        assert [n.label() for n in plans[0].nodes()] == \
            [n.label() for n in classical.nodes()]

    def test_single_table_query(self, tiny_imdb):
        plans = candidate_plans(
            tiny_imdb, parse_query("SELECT COUNT(*) FROM title t "
                                   "WHERE t.id < 100"))
        assert len(plans) >= 1


class TestSelector:
    @pytest.fixture(scope="class")
    def model(self, tiny_imdb):
        graphs = build_labelled_graphs([tiny_imdb], 50,
                                       CardinalitySource.ESTIMATED, seed=5)
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=0))
        model.fit(graphs, TrainerConfig(epochs=25, batch_size=32,
                                        early_stopping_patience=25))
        return model

    def test_choice_structure(self, tiny_imdb, model):
        selector = ZeroShotPlanSelector(tiny_imdb, model)
        choice = selector.choose(parse_query(JOIN_QUERY))
        assert choice.num_candidates >= 2
        assert choice.predicted_seconds > 0
        assert len(choice.predictions) == choice.num_candidates
        assert choice.predicted_seconds == min(choice.predictions)

    def test_unfitted_model_rejected(self, tiny_imdb):
        with pytest.raises(ModelError):
            ZeroShotPlanSelector(tiny_imdb, ZeroShotCostModel())

    def test_invalid_switch_margin_rejected(self, tiny_imdb, model):
        for margin in (-0.1, 1.0, 1.5):
            with pytest.raises(ModelError):
                ZeroShotPlanSelector(tiny_imdb, model, switch_margin=margin)

    def test_estimator_input_equals_model_input(self, tiny_imdb, model):
        """The selector accepts the unified CostEstimator directly."""
        from repro.models import ZeroShotEstimator
        from repro.featurize import CardinalitySource
        estimator = ZeroShotEstimator.from_model(
            model, CardinalitySource.ESTIMATED)
        query = parse_query(JOIN_QUERY)
        via_model = ZeroShotPlanSelector(tiny_imdb, model).choose(query)
        via_estimator = ZeroShotPlanSelector(tiny_imdb,
                                             estimator).choose(query)
        assert via_model.predictions == via_estimator.predictions
        assert via_model.agrees_with_classical == \
            via_estimator.agrees_with_classical

    def test_service_backed_choice_identical(self, tiny_imdb, model):
        """service=True routes predictions through CostModelService;
        batch-size-invariant inference keeps choices bit-identical."""
        query = parse_query(JOIN_QUERY)
        plain = ZeroShotPlanSelector(tiny_imdb, model).choose(query)
        served_selector = ZeroShotPlanSelector(tiny_imdb, model,
                                               service=True)
        served = served_selector.choose(query)
        assert served.predictions == plain.predictions
        assert served.predicted_seconds == plain.predicted_seconds
        # Candidate plans are regenerated per call, so the selector's
        # service runs with its encode cache disabled.
        assert served_selector._service.cached_plans == 0
        assert served_selector._service.stats.requests == \
            served.num_candidates


class TestSwitchMargin:
    """The switch-margin fallback: predicted wins inside the margin
    must not flip the choice away from the classical plan."""

    @pytest.fixture(scope="class")
    def model(self, tiny_imdb):
        graphs = build_labelled_graphs([tiny_imdb], 50,
                                       CardinalitySource.ESTIMATED, seed=5)
        model = ZeroShotCostModel(ZeroShotConfig(hidden_dim=32, seed=0))
        model.fit(graphs, TrainerConfig(epochs=25, batch_size=32,
                                        early_stopping_patience=25))
        return model

    def test_extreme_margin_always_keeps_classical(self, tiny_imdb, model):
        selector = ZeroShotPlanSelector(tiny_imdb, model,
                                        switch_margin=0.99)
        choice = selector.choose(parse_query(JOIN_QUERY))
        assert choice.agrees_with_classical
        assert choice.predicted_seconds == choice.predictions[0]

    def test_zero_margin_takes_any_predicted_win(self, tiny_imdb, model):
        selector = ZeroShotPlanSelector(tiny_imdb, model,
                                        switch_margin=0.0)
        choice = selector.choose(parse_query(JOIN_QUERY))
        assert choice.predicted_seconds == min(choice.predictions)

    def test_margin_interpolates(self, tiny_imdb, model):
        """Whenever the zero-margin selector switches plans, a large
        enough margin forces the choice back to classical."""
        queries = [parse_query(JOIN_QUERY),
                   parse_query("SELECT COUNT(*) FROM title t, "
                               "movie_companies mc WHERE t.id = mc.movie_id "
                               "AND t.production_year > 1990")]
        eager = ZeroShotPlanSelector(tiny_imdb, model, switch_margin=0.0)
        cautious = ZeroShotPlanSelector(tiny_imdb, model,
                                        switch_margin=0.99)
        for query in queries:
            eager_choice = eager.choose(query)
            cautious_choice = cautious.choose(query)
            assert cautious_choice.agrees_with_classical
            # The candidate portfolio itself is margin-independent.
            assert eager_choice.predictions == cautious_choice.predictions
