"""Result-equivalence property suite for the rewrite phase.

The load-bearing guarantee of the rewrite PR: for every seeded
generator workload query on the synthetic fleet and the IMDB-shaped
holdout,

* executing the plan with rewrites **on** returns the same rows as
  with rewrites **off** (checked on the pre-aggregation pipeline with
  exact multiset equality, and on the final aggregates — exactly for
  COUNT/MIN/MAX/group keys, to float tolerance for SUM/AVG whose
  summation order legitimately differs between plan shapes), and
* ``enable_rewrites=False`` reproduces today's plans **bit-for-bit**
  (subtree signatures, EXPLAIN text and total cost all identical to
  the default planner's).

Every parametrization also runs with each rule individually disabled,
so a bug in one rule cannot hide behind another rule undoing it.
"""

import numpy as np
import pytest

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.engine import execute_plan
from repro.engine.executor import Executor, _subtree_signature
from repro.optimizer import Planner, PlannerOptions, available_rewrite_rules
from repro.plans.explain import explain_plan
from repro.plans.operators import HashAggregate, PlainAggregate
from repro.sql.ast import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    ComparisonOperator,
    JoinCondition,
    Predicate,
    Query,
    TableRef,
)
from repro.workload import (
    WorkloadSpec,
    generate_workload,
    make_benchmark_workload,
)

pytestmark = pytest.mark.rewrite

#: Aggregates whose result must match bit-for-bit regardless of the
#: plan shape (order-independent reductions).
_EXACT_AGGREGATES = (AggregateFunction.COUNT, AggregateFunction.MIN,
                     AggregateFunction.MAX)

#: rewrites-on, plus each rule knocked out individually.
CONFIGS = [()] + [(name,) for name in available_rewrite_rules()]


def _config_id(disabled):
    return "all-rules" if not disabled else f"without-{disabled[0]}"


@pytest.fixture(scope="module")
def second_synthetic_db():
    spec = SyntheticDatabaseSpec(
        name="synth2", seed=23, num_tables=5, min_rows=200, max_rows=1_500
    )
    return generate_database(spec)


def _crafted_queries():
    """Hand-built IMDB queries covering merge patterns the generator
    never emits (it draws predicates on distinct columns)."""
    t = lambda c: ColumnRef("t", c)  # noqa: E731
    mi = lambda c: ColumnRef("mi", c)  # noqa: E731
    EQ, GT, GEQ = (ComparisonOperator.EQ, ComparisonOperator.GT,
                   ComparisonOperator.GEQ)
    LT, LEQ = ComparisonOperator.LT, ComparisonOperator.LEQ
    BETWEEN, IN = ComparisonOperator.BETWEEN, ComparisonOperator.IN
    star = (TableRef("title", "t"), TableRef("movie_info", "mi"),
            TableRef("movie_keyword", "mk"))
    star_joins = (JoinCondition(mi("movie_id"), t("id")),
                  JoinCondition(ColumnRef("mk", "movie_id"), t("id")))
    return [
        # Stacked ranges + IN on one column -> pruned IN list.
        Query(tables=(TableRef("title", "t"),),
              predicates=(Predicate(t("production_year"), GEQ, 1950),
                          Predicate(t("production_year"), LEQ, 2000),
                          Predicate(t("production_year"), GT, 1960),
                          Predicate(t("production_year"), IN,
                                    (1955, 1965, 1975, 1985, 1995, 2005)))),
        # IN ∩ IN on a categorical column (no range predicates allowed
        # there), grouped aggregate on top.
        Query(tables=(TableRef("title", "t"),),
              predicates=(Predicate(t("kind_id"), IN, (0, 1, 2, 3)),
                          Predicate(t("kind_id"), IN, (1, 2, 3, 4))),
              aggregates=(AggregateSpec(AggregateFunction.AVG, t("rating")),
                          AggregateSpec(AggregateFunction.COUNT)),
              group_by=(t("kind_id"),)),
        # Contradictory conjunction (empty result) must stay empty.
        Query(tables=(TableRef("title", "t"),),
              predicates=(Predicate(t("votes"), GT, 1_000),
                          Predicate(t("votes"), LT, 10))),
        # Star join with transitive closure + merge-worthy stacks.
        Query(tables=star, joins=star_joins,
              predicates=(Predicate(t("production_year"),
                                    BETWEEN, (1930, 2010)),
                          Predicate(t("production_year"), GEQ, 1950),
                          Predicate(mi("info_type_id"), EQ, 2)),
              aggregates=(AggregateSpec(AggregateFunction.COUNT),
                          AggregateSpec(AggregateFunction.MIN, t("votes")),
                          AggregateSpec(AggregateFunction.SUM,
                                        mi("info_value")))),
        # Point interval -> EQ (can unlock index scans on id).
        Query(tables=(TableRef("title", "t"),
                      TableRef("movie_keyword", "mk")),
              joins=(JoinCondition(ColumnRef("mk", "movie_id"), t("id")),),
              predicates=(Predicate(t("id"), GEQ, 11),
                          Predicate(t("id"), LEQ, 11))),
    ]


def _workload(database, kind):
    if kind == "generator":
        spec = WorkloadSpec(num_queries=8, seed=31)
        return generate_workload(database, spec)
    if kind == "benchmarks":
        queries = []
        for name in ("scale", "job-light", "synthetic"):
            queries.extend(make_benchmark_workload(database, name, 4, seed=13))
        return queries
    return _crafted_queries()


def _column_matrix(relation, keys):
    """Rows x columns float matrix with nulls as NaN (for sorting)."""
    columns = []
    for key in keys:
        values = np.asarray(relation.columns[key], dtype=np.float64).copy()
        mask = relation.null_masks.get(key)
        if mask is not None:
            values[mask] = np.nan
        columns.append(values)
    return np.column_stack(columns) if columns else np.empty((0, 0))


def _sorted_rows(matrix):
    if matrix.size == 0:
        return matrix
    return matrix[np.lexsort(matrix.T[::-1])]


def assert_same_row_multiset(baseline, rewritten, label):
    """Exact multiset equality of the pre-aggregation pipelines.

    Projection pruning legitimately drops unreferenced columns, so the
    comparison runs on the rewritten side's columns — which must be a
    subset of the baseline's.
    """
    base_keys = set(baseline.columns)
    rew_keys = set(rewritten.columns)
    assert rew_keys <= base_keys, \
        f"{label}: rewritten plan materialized unknown columns " \
        f"{sorted(rew_keys - base_keys)}"
    assert baseline.num_rows == rewritten.num_rows, \
        f"{label}: row count {baseline.num_rows} != {rewritten.num_rows}"
    keys = sorted(rew_keys)
    base = _sorted_rows(_column_matrix(baseline, keys))
    rew = _sorted_rows(_column_matrix(rewritten, keys))
    np.testing.assert_array_equal(
        base, rew, err_msg=f"{label}: pre-aggregation rows differ")


def assert_same_aggregates(query, baseline, rewritten, label):
    """Final aggregate outputs: exact where order-independent.

    Output rows already align positionally: grouped aggregation emits
    groups in sorted key order (``np.unique``) on both sides, and
    plain aggregation emits a single row.  Aggregate columns are named
    ``agg{i}`` in SELECT-list order, group keys ``table.column``.
    """
    assert sorted(baseline.relation.columns) == \
        sorted(rewritten.relation.columns), f"{label}: output columns differ"
    specs = list(query.aggregates) or [AggregateSpec(AggregateFunction.COUNT)]
    for key in sorted(baseline.relation.columns):
        base = np.asarray(baseline.relation.columns[key])
        rew = np.asarray(rewritten.relation.columns[key])
        if key.startswith("agg"):
            spec = specs[int(key[len("agg"):])]
            exact = spec.function in _EXACT_AGGREGATES
        else:
            exact = True  # group-by key values
        if exact or base.dtype.kind in "iub":
            np.testing.assert_array_equal(
                base, rew, err_msg=f"{label}: aggregate {key} differs")
        else:
            # SUM/AVG fold rows in plan order; different (equivalent)
            # plans may round differently in the last ulps.
            np.testing.assert_allclose(
                base.astype(float), rew.astype(float),
                rtol=1e-9, atol=1e-12, equal_nan=True,
                err_msg=f"{label}: aggregate {key} differs beyond rounding")


def _check_equivalence(database, queries, disabled):
    baseline_planner = Planner(database, PlannerOptions())
    rewrite_planner = Planner(
        database,
        PlannerOptions(enable_rewrites=True, disabled_rules=disabled),
    )
    fired = set()
    for index, query in enumerate(queries):
        label = f"query {index}: {query}"
        plan_off = baseline_planner.plan(query)
        plan_on = rewrite_planner.plan(query)
        fired.update(plan_on.metadata["rewrite_trace"].rules_fired)

        # Pre-aggregation pipelines: exact multiset equality.
        pre_off = Executor(database)._execute_node(plan_off.root.children[0])
        pre_on = Executor(database)._execute_node(plan_on.root.children[0])
        assert_same_row_multiset(pre_off, pre_on, label)

        # Full plans (aggregates on top).
        result_off = execute_plan(database, plan_off)
        result_on = execute_plan(database, plan_on)
        assert_same_aggregates(query, result_off, result_on, label)
    return fired


class TestRowIdenticalResults:
    @pytest.mark.parametrize("disabled", CONFIGS, ids=_config_id)
    def test_synthetic_generator_workload(self, small_synthetic_db, disabled):
        queries = _workload(small_synthetic_db, "generator")
        _check_equivalence(small_synthetic_db, queries, disabled)

    @pytest.mark.parametrize("disabled", CONFIGS, ids=_config_id)
    def test_second_synthetic_database(self, second_synthetic_db, disabled):
        queries = _workload(second_synthetic_db, "generator")
        _check_equivalence(second_synthetic_db, queries, disabled)

    @pytest.mark.parametrize("disabled", CONFIGS, ids=_config_id)
    def test_imdb_holdout_benchmarks(self, tiny_imdb, disabled):
        queries = _workload(tiny_imdb, "benchmarks")
        _check_equivalence(tiny_imdb, queries, disabled)

    def test_crafted_merge_heavy_queries(self, tiny_imdb):
        queries = _workload(tiny_imdb, "crafted")
        fired = _check_equivalence(tiny_imdb, queries, ())
        assert "filter-merge" in fired
        assert "transitive-joins" in fired

    def test_every_rule_fires_somewhere(self, tiny_imdb, small_synthetic_db):
        """The suite is vacuous for a rule that never matches."""
        fired = set()
        for database, kind in ((tiny_imdb, "benchmarks"),
                               (tiny_imdb, "crafted"),
                               (small_synthetic_db, "generator")):
            fired |= _check_equivalence(database, _workload(database, kind), ())
        assert fired >= set(available_rewrite_rules())


class TestRulesOffBitIdentity:
    """``enable_rewrites=False`` must reproduce today's plans exactly."""

    def _assert_identical_plans(self, database, queries):
        default_planner = Planner(database)
        off_planner = Planner(database,
                              PlannerOptions(enable_rewrites=False))
        for query in queries:
            plan_default = default_planner.plan(query)
            plan_off = off_planner.plan(query)
            assert _subtree_signature(plan_default.root) == \
                _subtree_signature(plan_off.root)
            assert explain_plan(plan_default) == explain_plan(plan_off)
            assert plan_default.total_cost == plan_off.total_cost
            assert "rewrite_trace" not in plan_off.metadata
            assert off_planner.last_rewrite_trace is None

    def test_imdb(self, tiny_imdb):
        self._assert_identical_plans(tiny_imdb,
                                     _workload(tiny_imdb, "benchmarks"))

    def test_synthetic(self, small_synthetic_db):
        self._assert_identical_plans(
            small_synthetic_db, _workload(small_synthetic_db, "generator"))

    def test_rewrites_off_is_the_default(self):
        assert PlannerOptions().enable_rewrites is False
        assert PlannerOptions().disabled_rules == ()


class TestRewritePlansStillAggregate:
    def test_aggregate_stays_on_top(self, tiny_imdb):
        planner = Planner(tiny_imdb, PlannerOptions(enable_rewrites=True))
        for query in _workload(tiny_imdb, "crafted"):
            plan = planner.plan(query)
            assert isinstance(plan.root, (HashAggregate, PlainAggregate))


class TestWorkloadLayerIntegration:
    def test_corpus_shard_carries_planner_options(self):
        from repro.db import generate_training_database_specs
        from repro.workload import execute_shard, make_corpus_shards

        specs = generate_training_database_specs(1, base_seed=5)
        options = PlannerOptions(enable_rewrites=True)
        shards = make_corpus_shards(specs, queries_per_database=3, seed=9,
                                    planner_options=options)
        assert shards[0].planner_options == options
        execution = execute_shard(shards[0])
        assert len(execution.records) == 3
        for record in execution.records:
            assert record.plan.metadata["rewrite_trace"] is not None

    def test_default_shards_are_rewrite_free(self):
        from repro.db import generate_training_database_specs
        from repro.workload import execute_shard, make_corpus_shards

        specs = generate_training_database_specs(1, base_seed=5)
        shards = make_corpus_shards(specs, queries_per_database=2, seed=9)
        assert shards[0].planner_options == PlannerOptions()
        execution = execute_shard(shards[0])
        for record in execution.records:
            assert "rewrite_trace" not in record.plan.metadata
