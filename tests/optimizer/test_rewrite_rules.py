"""Unit, fixpoint/termination and registry tests for the rewrite phase.

Covers the satellite contracts of the rewrite PR:

* rule conformance: every registered rule stops firing on its own
  output (match → transform → no-refire),
* the adversarial always-fires stub trips the firing cap and raises
  :class:`PlannerError` with the partial :class:`RewriteTrace` attached,
* eager validation: unknown names in ``disabled_rules`` and duplicate
  registration fail immediately with the available-rule list,
* the individual rules' semantics (pushdown partitioning, exact filter
  merging, transitive closure, projection pruning).
"""

import pytest

from repro.errors import PlannerError
from repro.optimizer import Planner, PlannerOptions
from repro.optimizer.rewrite import (
    FilterMergeRule,
    LogicalFilter,
    LogicalScan,
    RewriteContext,
    RewritePlanner,
    RuleRegistry,
    available_rewrite_rules,
    build_logical_plan,
    count_logical_nodes,
    default_rule_registry,
    find_logical_nodes,
    merge_conjunction,
    register_rewrite_rule,
    reset_rewrite_rules,
    unregister_rewrite_rule,
    walk_logical,
)
from repro.sql.ast import (
    AggregateFunction,
    AggregateSpec,
    ColumnRef,
    ComparisonOperator,
    JoinCondition,
    Predicate,
    Query,
    TableRef,
    join_column_classes,
)

pytestmark = pytest.mark.rewrite

EQ, NEQ = ComparisonOperator.EQ, ComparisonOperator.NEQ
LT, LEQ = ComparisonOperator.LT, ComparisonOperator.LEQ
GT, GEQ = ComparisonOperator.GT, ComparisonOperator.GEQ
BETWEEN, IN = ComparisonOperator.BETWEEN, ComparisonOperator.IN


def _col(alias, column):
    return ColumnRef(alias, column)


def star_query(predicates=(), aggregates=(), group_by=()):
    """title ⋈ movie_info ⋈ movie_keyword (shared parent ``title``)."""
    return Query(
        tables=(TableRef("title", "t"), TableRef("movie_info", "mi"),
                TableRef("movie_keyword", "mk")),
        joins=(JoinCondition(_col("mi", "movie_id"), _col("t", "id")),
               JoinCondition(_col("mk", "movie_id"), _col("t", "id"))),
        predicates=tuple(predicates),
        aggregates=tuple(aggregates),
        group_by=tuple(group_by),
    )


SAMPLE_QUERIES = [
    star_query(
        predicates=(Predicate(_col("t", "production_year"), GEQ, 1950),
                    Predicate(_col("t", "production_year"), LEQ, 2000),
                    Predicate(_col("mi", "info_type_id"), EQ, 3)),
        aggregates=(AggregateSpec(AggregateFunction.COUNT),),
    ),
    star_query(
        predicates=(Predicate(_col("t", "kind_id"), IN, (1, 2, 3)),
                    Predicate(_col("t", "kind_id"), IN, (2, 3, 4))),
        aggregates=(AggregateSpec(AggregateFunction.AVG,
                                  _col("t", "rating")),),
        group_by=(_col("t", "kind_id"),),
    ),
    Query(tables=(TableRef("title", "t"),),
          predicates=(Predicate(_col("t", "votes"), GT, 100),
                      Predicate(_col("t", "votes"), GT, 500))),
]


# ----------------------------------------------------------------------
# Rule conformance: no rule refires on its own output
# ----------------------------------------------------------------------
class TestRuleConformance:
    @pytest.mark.parametrize("rule_name", available_rewrite_rules())
    @pytest.mark.parametrize("query_index", range(len(SAMPLE_QUERIES)))
    def test_rule_reaches_own_fixpoint(self, rule_name, query_index):
        query = SAMPLE_QUERIES[query_index]
        rule = default_rule_registry().get(rule_name)
        context = RewriteContext(query=query)
        root = build_logical_plan(query)
        for _ in range(32):
            result = rule.apply(root, context)
            if result is None:
                return  # fixpoint reached
            assert result is not root, \
                f"{rule_name} returned its input instead of None"
            root = result
        pytest.fail(f"{rule_name} did not stop firing on its own output")

    @pytest.mark.parametrize("rule_name", available_rewrite_rules())
    def test_rules_fire_somewhere(self, rule_name):
        """Every built-in rule matches at least one sample query."""
        rule = default_rule_registry().get(rule_name)
        fired = False
        for query in SAMPLE_QUERIES:
            root = build_logical_plan(query)
            context = RewriteContext(query=query)
            # Pushdown first: merge and pruning act on pushed trees too.
            if rule_name != "predicate-pushdown":
                pre = default_rule_registry().get("predicate-pushdown")
                while (moved := pre.apply(root, context)) is not None:
                    root = moved
            if rule.apply(root, context) is not None:
                fired = True
        assert fired, f"{rule_name} never matched a sample query"


# ----------------------------------------------------------------------
# Termination: the adversarial always-fires stub trips the cap
# ----------------------------------------------------------------------
class _AlwaysFires:
    """Wraps the tree in an empty filter, forever."""

    name = "always-fires"
    description = "adversarial stub: grows the tree on every application"

    def apply(self, root, context):
        return LogicalFilter(predicates=(), children=(root,))


class TestTermination:
    def test_iteration_cap_raises_with_trace(self):
        register_rewrite_rule(_AlwaysFires())
        try:
            planner = RewritePlanner(max_firings=12)
            with pytest.raises(PlannerError) as excinfo:
                planner.rewrite(SAMPLE_QUERIES[0])
        finally:
            reset_rewrite_rules()
        error = excinfo.value
        assert "always-fires" in str(error)
        trace = error.trace
        assert trace is not None, "PlannerError must carry the RewriteTrace"
        assert trace.truncated
        assert "always-fires" in trace.rules_fired
        assert len(trace.firings) == 12
        # The stub grows the tree by one node per firing.
        growth = [f for f in trace.firings if f.rule == "always-fires"]
        assert all(f.nodes_after == f.nodes_before + 1 for f in growth)

    def test_builtin_rules_converge_quickly(self):
        planner = RewritePlanner()
        for query in SAMPLE_QUERIES:
            result = planner.rewrite(query)
            assert not result.trace.truncated
            assert len(result.trace.firings) < 16

    def test_zero_max_firings_rejected(self):
        with pytest.raises(PlannerError, match="max_firings"):
            RewritePlanner(max_firings=0)


# ----------------------------------------------------------------------
# Registry + eager validation
# ----------------------------------------------------------------------
class TestRegistry:
    def test_duplicate_registration_rejected_with_available_list(self):
        registry = RuleRegistry()
        registry.register(_AlwaysFires())
        with pytest.raises(PlannerError) as excinfo:
            registry.register(_AlwaysFires())
        assert "already registered" in str(excinfo.value)
        assert "always-fires" in str(excinfo.value)

    def test_replace_returns_previous_binding(self):
        registry = RuleRegistry()
        first = _AlwaysFires()
        registry.register(first)
        assert registry.register(_AlwaysFires(), replace=True) is first

    def test_unknown_rule_name_lists_available(self):
        with pytest.raises(PlannerError) as excinfo:
            default_rule_registry().get("no-such-rule")
        message = str(excinfo.value)
        for name in available_rewrite_rules():
            assert name in message

    def test_rule_without_name_rejected(self):
        class Nameless:
            def apply(self, root, context):
                return None

        with pytest.raises(PlannerError, match="name"):
            RuleRegistry().register(Nameless())

    def test_global_register_unregister_roundtrip(self):
        stub = _AlwaysFires()
        assert register_rewrite_rule(stub) is None
        try:
            assert "always-fires" in available_rewrite_rules()
        finally:
            assert unregister_rewrite_rule("always-fires") is stub
        assert "always-fires" not in available_rewrite_rules()

    def test_reset_restores_builtins(self):
        register_rewrite_rule(_AlwaysFires())
        unregister_rewrite_rule("predicate-pushdown")
        reset_rewrite_rules()
        assert available_rewrite_rules() == (
            "predicate-pushdown", "filter-merge",
            "transitive-joins", "projection-pruning",
        )


class TestEagerValidation:
    def test_unknown_disabled_rule_raises_at_rewriter_construction(self):
        with pytest.raises(PlannerError) as excinfo:
            RewritePlanner(disabled_rules=("predicate-pushdwon",))
        message = str(excinfo.value)
        assert "predicate-pushdwon" in message
        for name in available_rewrite_rules():
            assert name in message

    def test_unknown_disabled_rule_raises_at_planner_construction(
            self, tiny_imdb):
        options = PlannerOptions(enable_rewrites=True,
                                 disabled_rules=("nope",))
        with pytest.raises(PlannerError, match="nope"):
            Planner(tiny_imdb, options)

    def test_validated_even_with_rewrites_disabled(self, tiny_imdb):
        """A typo'd disabled_rules entry must not lie dormant."""
        options = PlannerOptions(enable_rewrites=False,
                                 disabled_rules=("nope",))
        with pytest.raises(PlannerError, match="nope"):
            Planner(tiny_imdb, options)

    def test_disabling_every_rule_is_a_noop_rewrite(self, tiny_imdb):
        options = PlannerOptions(enable_rewrites=True,
                                 disabled_rules=available_rewrite_rules())
        planner = Planner(tiny_imdb, options)
        plan = planner.plan(SAMPLE_QUERIES[0])
        trace = plan.metadata["rewrite_trace"]
        assert trace.firings == ()
        # Un-pushed predicates get force-pushed at lowering.
        assert trace.notes


# ----------------------------------------------------------------------
# Individual rule semantics
# ----------------------------------------------------------------------
class TestPredicatePushdown:
    def test_pushes_into_the_owning_scan(self):
        query = SAMPLE_QUERIES[0]
        planner = RewritePlanner(
            disabled_rules=("filter-merge", "transitive-joins",
                            "projection-pruning"))
        result = planner.rewrite(query)
        assert not find_logical_nodes(result.logical_plan, LogicalFilter)
        scans = {s.alias: s
                 for s in find_logical_nodes(result.logical_plan, LogicalScan)}
        assert len(scans["t"].predicates) == 2
        assert len(scans["mi"].predicates) == 1
        assert scans["mk"].predicates == ()
        # The flat query puts predicates back in table order.
        assert result.query.predicates_on("t") == query.predicates_on("t")


class TestFilterMerge:
    def merge(self, *predicates):
        return merge_conjunction(tuple(predicates))

    def c(self):
        return _col("t", "votes")

    def test_range_intersection_to_between(self):
        merged = self.merge(Predicate(self.c(), GEQ, 10),
                            Predicate(self.c(), LEQ, 90),
                            Predicate(self.c(), GEQ, 30))
        assert merged == (Predicate(self.c(), BETWEEN, (30, 90)),)

    def test_point_interval_becomes_eq(self):
        merged = self.merge(Predicate(self.c(), GEQ, 7),
                            Predicate(self.c(), LEQ, 7))
        assert merged == (Predicate(self.c(), EQ, 7),)

    def test_exclusive_bounds_stay_separate(self):
        inputs = (Predicate(self.c(), GT, 2), Predicate(self.c(), LEQ, 9))
        assert self.merge(*inputs) is None  # already canonical

    def test_in_intersection_and_range_restriction(self):
        merged = self.merge(Predicate(self.c(), IN, (1, 5, 9, 12)),
                            Predicate(self.c(), IN, (5, 9, 12, 20)),
                            Predicate(self.c(), LT, 12))
        assert merged == (Predicate(self.c(), IN, (5, 9)),)

    def test_singleton_in_becomes_eq(self):
        merged = self.merge(Predicate(self.c(), IN, (3, 4)),
                            Predicate(self.c(), IN, (4, 7)))
        assert merged == (Predicate(self.c(), EQ, 4),)

    def test_eq_absorbs_consistent_ranges(self):
        merged = self.merge(Predicate(self.c(), EQ, 5),
                            Predicate(self.c(), LEQ, 9),
                            Predicate(self.c(), IN, (4, 5, 6)))
        assert merged == (Predicate(self.c(), EQ, 5),)

    def test_contradictions_kept_verbatim(self):
        contradictory = (Predicate(self.c(), EQ, 1),
                         Predicate(self.c(), EQ, 2))
        assert self.merge(*contradictory) is None
        empty_range = (Predicate(self.c(), GT, 9), Predicate(self.c(), LT, 2))
        assert self.merge(*empty_range) is None

    def test_exact_duplicates_deduped_and_neq_passes_through(self):
        merged = self.merge(Predicate(self.c(), NEQ, 3),
                            Predicate(self.c(), NEQ, 3),
                            Predicate(self.c(), NEQ, 4))
        assert merged == (Predicate(self.c(), NEQ, 3),
                          Predicate(self.c(), NEQ, 4))

    def test_merge_is_idempotent(self):
        merged = self.merge(Predicate(self.c(), GEQ, 10),
                            Predicate(self.c(), LEQ, 90))
        assert merge_conjunction(merged) is None

    def test_collapses_stacked_filters(self):
        scan = LogicalScan(alias="t", table_name="title")
        inner = LogicalFilter(
            predicates=(Predicate(self.c(), GEQ, 10),), children=(scan,))
        outer = LogicalFilter(
            predicates=(Predicate(self.c(), LEQ, 90),), children=(inner,))
        rule = FilterMergeRule()
        context = RewriteContext(query=SAMPLE_QUERIES[2])
        result = rule.apply(outer, context)
        assert isinstance(result, LogicalFilter)
        assert isinstance(result.children[0], LogicalScan)
        assert len(result.predicates) == 2


class TestTransitiveJoins:
    def test_derives_the_missing_edge(self):
        query = star_query()
        result = RewritePlanner().rewrite(query)
        derived = set(result.query.joins) - set(query.joins)
        assert derived == {
            JoinCondition(_col("mi", "movie_id"), _col("mk", "movie_id"))
        }
        # Originals come first so joins_between(...)[0] prefers them.
        assert result.query.joins[:2] == query.joins

    def test_no_self_edges_within_one_alias(self):
        query = Query(
            tables=(TableRef("title", "t"), TableRef("movie_info", "mi")),
            joins=(JoinCondition(_col("mi", "movie_id"), _col("t", "id")),),
        )
        result = RewritePlanner().rewrite(query)
        assert result.query.joins == query.joins

    def test_join_column_classes_union_find(self):
        joins = (JoinCondition(_col("a", "x"), _col("b", "y")),
                 JoinCondition(_col("b", "y"), _col("c", "z")),
                 JoinCondition(_col("d", "w"), _col("e", "v")))
        classes = join_column_classes(joins)
        assert len(classes) == 2
        sizes = sorted(len(group) for group in classes)
        assert sizes == [2, 3]


class TestProjectionPruning:
    def test_scans_keep_only_referenced_columns(self):
        query = SAMPLE_QUERIES[0]
        result = RewritePlanner().rewrite(query)
        assert result.scan_columns["t"] == ("id", "production_year")
        assert result.scan_columns["mi"] == ("info_type_id", "movie_id")
        assert result.scan_columns["mk"] == ("movie_id",)

    def test_count_star_single_table_keeps_all_columns(self):
        query = Query(tables=(TableRef("title", "t"),),
                      aggregates=(AggregateSpec(AggregateFunction.COUNT),))
        result = RewritePlanner().rewrite(query)
        assert result.scan_columns == {}

    def test_group_by_and_aggregate_columns_survive(self):
        query = star_query(
            aggregates=(AggregateSpec(AggregateFunction.SUM,
                                      _col("mi", "info_value")),),
            group_by=(_col("t", "kind_id"),),
        )
        result = RewritePlanner().rewrite(query)
        assert "kind_id" in result.scan_columns["t"]
        assert "info_value" in result.scan_columns["mi"]


class TestTraceAndLowering:
    def test_trace_records_order_and_node_counts(self):
        result = RewritePlanner().rewrite(SAMPLE_QUERIES[0])
        trace = result.trace
        assert trace.nodes_before == count_logical_nodes(
            build_logical_plan(SAMPLE_QUERIES[0]))
        assert trace.nodes_after == count_logical_nodes(result.logical_plan)
        names = trace.rules_fired
        assert names, "expected at least one firing"
        # Application order follows registration order within a pass.
        assert names[0] == "predicate-pushdown"
        assert set(trace.firing_counts) == set(names)

    def test_lowering_is_deterministic(self):
        first = RewritePlanner().rewrite(SAMPLE_QUERIES[0])
        second = RewritePlanner().rewrite(SAMPLE_QUERIES[0])
        assert first.query == second.query
        assert first.scan_columns == second.scan_columns
        assert first.trace == second.trace

    def test_logical_tree_walk(self):
        root = build_logical_plan(SAMPLE_QUERIES[0])
        kinds = [node.operator_name for node in walk_logical(root)]
        assert kinds[0] == "LogicalAggregate"
        assert kinds.count("LogicalScan") == 3
