"""Shared-subgraph fragment priming: bit-identical, strictly cheaper.

``LearnedCardinalityEstimator._prime_query_deduped`` collapses a
query's O(2^k) canonical fragment plans into one merged DAG that
encodes every shared scan / left-deep-prefix subplan exactly once.
The non-negotiable property: every fragment estimate equals the legacy
per-fragment path bit-for-bit (batch-size-invariant forward pass +
identical heuristic annotations on shared nodes).
"""

import pytest

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.featurize import CardinalitySource, ZeroShotFeaturizer
from repro.models import TrainerConfig, ZeroShotConfig, get_estimator
from repro.optimizer import LearnedCardinalityEstimator, Planner
from repro.workload import WorkloadRunner, WorkloadSpec, generate_workload

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def setup():
    database = generate_database(SyntheticDatabaseSpec(
        name="dedup-synth", seed=41, num_tables=5, min_rows=400,
        max_rows=2_500,
    ))
    runner = WorkloadRunner(database, seed=8)
    records = runner.run(generate_workload(
        database, WorkloadSpec(num_queries=30, max_tables=5, seed=9)))
    estimator = get_estimator(
        "zero-shot-cardinality",
        config=ZeroShotConfig(hidden_dim=16, cardinality_head=True))
    estimator.fit(records, database, TrainerConfig(
        epochs=3, batch_size=16, early_stopping_patience=5))
    return database, records, estimator


def fragment_caches(learned, queries):
    """Prime every query and return {query: fragment dict} snapshots."""
    out = {}
    for query in queries:
        learned.joined_rows(query, frozenset(query.table_names))
        out[id(query)] = dict(learned._cache[id(query)][1])
    return out


class TestBitIdentity:
    def test_dedup_matches_legacy_on_every_fragment(self, setup):
        database, records, estimator = setup
        legacy = LearnedCardinalityEstimator(database, estimator,
                                             dedup_fragments=False)
        dedup = LearnedCardinalityEstimator(database, estimator)
        assert dedup._predict_graphs is not None
        queries = [r.query for r in records]
        legacy_frags = fragment_caches(legacy, queries)
        dedup_frags = fragment_caches(dedup, queries)
        for key in legacy_frags:
            assert legacy_frags[key] == dedup_frags[key]
        assert dedup.learned_fragments == legacy.learned_fragments
        assert dedup.learned_fragments > 0
        # Only the dedup path reports merged-graph node counts.
        assert dedup.primed_graph_nodes > 0
        assert legacy.primed_graph_nodes == 0

    def test_planner_plans_identical_under_dedup(self, setup):
        database, records, estimator = setup
        legacy = LearnedCardinalityEstimator(database, estimator,
                                             dedup_fragments=False)
        dedup = LearnedCardinalityEstimator(database, estimator)
        for record in records[:8]:
            plan_a = Planner(
                database, cardinality_estimator=legacy).plan(record.query)
            plan_b = Planner(
                database, cardinality_estimator=dedup).plan(record.query)
            shape_a = [(n.label(), n.est_rows) for n in plan_a.nodes()]
            shape_b = [(n.label(), n.est_rows) for n in plan_b.nodes()]
            assert shape_a == shape_b
            assert plan_a.total_cost == plan_b.total_cost


class TestSharedEncoding:
    def test_shared_graph_encodes_fewer_nodes(self, setup):
        """The merged graph must be strictly smaller than the sum of
        the per-fragment graphs — that's the whole point."""
        database, records, estimator = setup
        featurizer = ZeroShotFeaturizer(CardinalitySource.ESTIMATED)
        query = max((r.query for r in records),
                    key=lambda q: len(q.tables))
        assert len(query.tables) >= 3
        dedup = LearnedCardinalityEstimator(database, estimator)
        dedup.joined_rows(query, frozenset(query.table_names))
        shared_nodes = dedup.primed_graph_nodes

        from repro.optimizer.join_order import connected_subsets
        adjacency = dedup._join_adjacency(query)
        per_fragment = 0
        for aliases in connected_subsets(query):
            plan = dedup._fragment_plan(query, aliases, adjacency)
            graph = featurizer.featurize(plan, database)
            per_fragment += graph.num_nodes
        assert shared_nodes < per_fragment
        # The gate in benchmarks/ demands >=2x on a 5-way join; here we
        # just pin that sharing is real on whatever the workload gave us.
        assert shared_nodes <= per_fragment * 0.8

    def test_featurize_shared_single_root_matches_featurize(self, setup):
        """One root through featurize_shared == plain featurize."""
        database, records, estimator = setup
        featurizer = ZeroShotFeaturizer(CardinalitySource.ESTIMATED)
        dedup = LearnedCardinalityEstimator(database, estimator)
        query = records[0].query
        alias = query.table_names[0]
        adjacency = dedup._join_adjacency(query)
        plan = dedup._fragment_plan(query, frozenset({alias}), adjacency)
        solo = featurizer.featurize(plan, database)
        shared, root_ids = featurizer.featurize_shared(
            [plan.root], query, database)
        assert shared.num_nodes == solo.num_nodes
        assert len(root_ids) == 1


class TestAdjacencyRefactor:
    def test_fragment_plan_with_and_without_adjacency_identical(self, setup):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator)
        for record in records[:10]:
            query = record.query
            adjacency = learned._join_adjacency(query)
            from repro.optimizer.join_order import connected_subsets
            for aliases in connected_subsets(query):
                fresh = learned._fragment_plan(query, aliases)
                shared = learned._fragment_plan(query, aliases, adjacency)
                assert [(n.label(), n.est_rows) for n in fresh.nodes()] == \
                    [(n.label(), n.est_rows) for n in shared.nodes()]

    def test_adjacency_drops_self_joins_keeps_order(self, setup):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator)
        query = next(r.query for r in records if len(r.query.joins) >= 2)
        adjacency = learned._join_adjacency(query)
        for alias, edges in adjacency.items():
            for neighbour, condition in edges:
                assert neighbour != alias
                assert condition in query.joins


class TestFallbacks:
    def test_non_graph_model_uses_legacy_path(self, setup):
        """A plan-level mock (no encoded-graph surface) still primes —
        through the per-fragment path."""
        database, records, _ = setup

        class PlanLevel:
            def predict_cardinalities(self, plans, database=None):
                return [[100.0] * 64 for _ in plans]

        learned = LearnedCardinalityEstimator(database, PlanLevel())
        assert learned._predict_graphs is None
        query = next(r.query for r in records if len(r.query.tables) >= 2)
        rows = learned.joined_rows(query, frozenset(query.table_names))
        assert rows == 100.0
        assert learned.learned_fragments > 0
        assert learned.primed_graph_nodes == 0

    def test_dedup_disabled_flag(self, setup):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator,
                                              dedup_fragments=False)
        query = records[0].query
        learned.joined_rows(query, frozenset(query.table_names))
        assert learned.primed_graph_nodes == 0
        assert learned.learned_fragments > 0
