"""Planner: plan validity, operator selection, estimates, what-if."""

import pytest

from repro.engine import execute_plan
from repro.errors import OptimizerError, QueryError
from repro.optimizer import CardinalityEstimator, plan_query
from repro.optimizer.join_order import connected_subsets, enumerate_join_orders
from repro.optimizer.planner import Planner, PlannerOptions
from repro.optimizer.whatif import IndexSpec, WhatIfPlanner
from repro.plans import (
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalPlan,
    PlainAggregate,
    SeqScan,
    walk_plan,
)
from repro.sql import parse_query


def q(text):
    return parse_query(text)


class TestSingleTablePlans:
    def test_seq_scan_plan(self, tiny_imdb):
        plan = plan_query(tiny_imdb, q("SELECT COUNT(*) FROM title t"))
        assert isinstance(plan.root, PlainAggregate)
        assert isinstance(plan.root.children[0], SeqScan)
        assert plan.total_cost > 0

    def test_index_scan_chosen_for_selective_pk_lookup(self, tiny_imdb):
        plan = plan_query(tiny_imdb,
                          q("SELECT COUNT(*) FROM title t WHERE t.id = 5"))
        scan = plan.root.children[0]
        assert isinstance(scan, IndexScan)
        assert scan.index_name == "title_pkey"

    def test_seq_scan_chosen_for_unselective_predicate(self, tiny_imdb):
        plan = plan_query(
            tiny_imdb, q("SELECT COUNT(*) FROM title t WHERE t.id >= 0"))
        assert isinstance(plan.root.children[0], SeqScan)

    def test_estimates_annotated_everywhere(self, tiny_imdb):
        plan = plan_query(
            tiny_imdb,
            q("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000"),
        )
        for node in plan.nodes():
            assert node.est_rows >= 1.0 or isinstance(node, PlainAggregate)
            assert node.est_width > 0

    def test_group_by_plan(self, tiny_imdb):
        plan = plan_query(
            tiny_imdb,
            q("SELECT t.kind_id, COUNT(*) FROM title t GROUP BY t.kind_id"),
        )
        assert plan.root.operator_name == "HashAggregate"
        result = execute_plan(tiny_imdb, plan)
        assert plan.root.actual_rows <= 6  # kind_id has 6 categories
        del result


class TestJoinPlans:
    def test_two_way_join_correct(self, tiny_imdb):
        plan = plan_query(tiny_imdb, q(
            "SELECT COUNT(*) FROM title t, movie_companies mc "
            "WHERE t.id = mc.movie_id"
        ))
        result = execute_plan(tiny_imdb, plan)
        assert result.scalar() == tiny_imdb.num_rows("movie_companies")

    def test_five_way_join_plans_and_executes(self, tiny_imdb):
        plan = plan_query(tiny_imdb, q(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_info mi, "
            "movie_keyword mk, cast_info ci "
            "WHERE t.id = mc.movie_id AND t.id = mi.movie_id "
            "AND t.id = mk.movie_id AND t.id = ci.movie_id "
            "AND t.production_year > 2010 AND mc.company_type_id = 1"
        ))
        result = execute_plan(tiny_imdb, plan)
        assert result.scalar() >= 0
        join_ops = [n for n in plan.nodes()
                    if isinstance(n, (HashJoin, MergeJoin, NestedLoopJoin))]
        assert len(join_ops) == 4

    def test_join_order_independent_of_result(self, tiny_imdb):
        """All join strategies must agree on the query result."""
        text = ("SELECT COUNT(*) FROM title t, cast_info ci "
                "WHERE t.id = ci.movie_id AND t.production_year > 2005")
        results = set()
        for options in [
            PlannerOptions(enable_hashjoin=False, enable_mergejoin=False),
            PlannerOptions(enable_hashjoin=False, enable_nestloop=False),
            PlannerOptions(enable_mergejoin=False, enable_nestloop=False),
        ]:
            plan = plan_query(tiny_imdb, q(text), options)
            results.add(execute_plan(tiny_imdb, plan).scalar())
        assert len(results) == 1

    def test_cross_product_rejected(self, tiny_imdb):
        with pytest.raises(QueryError):
            plan_query(tiny_imdb, q(
                "SELECT COUNT(*) FROM title t, movie_companies mc"
            ))

    def test_all_scans_disabled(self, tiny_imdb):
        options = PlannerOptions(enable_seqscan=False, enable_indexscan=False)
        with pytest.raises(OptimizerError):
            plan_query(tiny_imdb, q(
                "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000"
            ), options)

    def test_estimation_error_grows_with_correlation(self, tiny_imdb):
        """Estimated cardinalities deviate from actuals under the injected
        year<->votes correlation (conjunctive predicates)."""
        plan = plan_query(tiny_imdb, q(
            "SELECT COUNT(*) FROM title t "
            "WHERE t.production_year > 2010 AND t.votes > 1000"
        ))
        execute_plan(tiny_imdb, plan)
        scan = plan.root.children[0]
        actual = max(scan.actual_rows, 1)
        qerr = max(scan.est_rows / actual, actual / scan.est_rows)
        assert qerr > 1.05  # the independence assumption is visibly wrong


class TestJoinEnumeration:
    def test_connected_subsets_of_chain(self, tiny_imdb):
        query = q("SELECT COUNT(*) FROM title t, movie_companies mc, "
                  "cast_info ci WHERE t.id = mc.movie_id AND t.id = ci.movie_id")
        subsets = connected_subsets(query)
        # star around t: {t},{mc},{ci},{t,mc},{t,ci},{t,mc,ci} (not {mc,ci})
        assert len(subsets) == 6
        assert frozenset({"mc", "ci"}) not in subsets

    def test_enumeration_visits_all_tables(self, tiny_imdb):
        query = q("SELECT COUNT(*) FROM title t, movie_companies mc "
                  "WHERE t.id = mc.movie_id")
        best = enumerate_join_orders(
            query,
            leaf_factory=lambda alias: (frozenset({alias}), 0.0),
            combine=lambda l, r, la, ra: (l[0] | r[0], l[1] + r[1] + 1.0),
            better=lambda a, b: a[1] < b[1],
        )
        assert best[0] == frozenset({"t", "mc"})


class TestWhatIf:
    def test_hypothetical_index_changes_plan(self, tiny_imdb):
        planner = WhatIfPlanner(tiny_imdb)
        text = ("SELECT COUNT(*) FROM title t "
                "WHERE t.votes > 2000000 AND t.production_year > 2000")
        baseline = planner.plan_without_indexes(q(text))
        whatif = planner.plan_with_indexes(q(text), [IndexSpec("title", "votes")])
        assert isinstance(baseline.root.children[0], SeqScan)
        scan = whatif.root.children[0]
        assert isinstance(scan, IndexScan)
        assert scan.index_column == "votes"
        assert planner.uses_hypothetical_index(whatif) or \
            "whatif" in scan.index_name

    def test_hypothetical_indexes_cleaned_up(self, tiny_imdb):
        planner = WhatIfPlanner(tiny_imdb)
        before = set(tiny_imdb.indexes)
        planner.plan_with_indexes(
            q("SELECT COUNT(*) FROM title t WHERE t.votes > 100000"),
            [IndexSpec("title", "votes")],
        )
        assert set(tiny_imdb.indexes) == before

    def test_whatif_cost_cheaper_for_selective_query(self, tiny_imdb):
        planner = WhatIfPlanner(tiny_imdb)
        text = "SELECT COUNT(*) FROM title t WHERE t.votes > 2000000"
        baseline = planner.plan_without_indexes(q(text))
        whatif = planner.plan_with_indexes(q(text),
                                           [IndexSpec("title", "votes")])
        assert whatif.total_cost < baseline.total_cost


class TestCardinalityEstimator:
    def test_fk_join_cardinality(self, tiny_imdb):
        query = q("SELECT COUNT(*) FROM title t, movie_companies mc "
                  "WHERE t.id = mc.movie_id")
        estimator = CardinalityEstimator(tiny_imdb)
        estimated = estimator.joined_rows(query, frozenset({"t", "mc"}))
        actual = tiny_imdb.num_rows("movie_companies")
        assert estimated == pytest.approx(actual, rel=0.4)

    def test_unknown_alias_rejected(self, tiny_imdb):
        query = q("SELECT COUNT(*) FROM title t")
        estimator = CardinalityEstimator(tiny_imdb)
        with pytest.raises(OptimizerError):
            estimator.joined_rows(query, frozenset({"ghost"}))

    def test_scan_rows_at_least_one(self, tiny_imdb):
        query = q("SELECT COUNT(*) FROM title t WHERE t.production_year = 1800")
        estimator = CardinalityEstimator(tiny_imdb)
        assert estimator.scan_rows(query, "t") >= 1.0


class TestPlanStructure:
    def test_all_plans_validate(self, tiny_imdb):
        texts = [
            "SELECT COUNT(*) FROM title t WHERE t.id < 100",
            "SELECT MIN(t.rating), MAX(t.votes) FROM title t, movie_info mi "
            "WHERE t.id = mi.movie_id AND mi.info_type_id = 3",
            "SELECT COUNT(*) FROM title t, movie_keyword mk, cast_info ci "
            "WHERE t.id = mk.movie_id AND t.id = ci.movie_id "
            "AND t.production_year > 2000 AND ci.role_id IN (1, 2)",
        ]
        for text in texts:
            plan = plan_query(tiny_imdb, q(text))
            assert isinstance(plan, PhysicalPlan)
            assert all(node is not None for node in walk_plan(plan.root))
            execute_plan(tiny_imdb, plan)
            assert plan.is_executed
