"""Learned cardinality injection: drop-in behaviour + fallback safety."""

import numpy as np
import pytest

from repro.db import SyntheticDatabaseSpec, generate_database
from repro.errors import ModelError, OptimizerError
from repro.models import TrainerConfig, ZeroShotConfig, get_estimator
from repro.optimizer import (
    CardinalityEstimator,
    LearnedCardinalityEstimator,
    Planner,
    plan_query,
)
from repro.optimizer.learned_planner import ZeroShotPlanSelector, candidate_plans
from repro.workload import WorkloadRunner, WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def setup():
    database = generate_database(SyntheticDatabaseSpec(
        name="lc-synth", seed=31, num_tables=4, min_rows=400, max_rows=3_000,
    ))
    runner = WorkloadRunner(database, seed=5)
    records = runner.run(generate_workload(
        database, WorkloadSpec(num_queries=40, seed=6)))
    estimator = get_estimator(
        "zero-shot-cardinality",
        config=ZeroShotConfig(hidden_dim=16, cardinality_head=True))
    estimator.fit(records, database, TrainerConfig(
        epochs=5, batch_size=16, early_stopping_patience=5))
    return database, records, estimator


def _plan_shape(plan):
    return [(node.label(), node.est_rows) for node in plan.nodes()]


class TestDropIn:
    def test_fragment_rows_are_learned_and_cached(self, setup):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator)
        query = next(r.query for r in records if len(r.query.tables) >= 2)
        aliases = frozenset(query.table_names)
        rows = learned.joined_rows(query, aliases)
        assert rows >= 1.0
        assert learned.learned_fragments >= 1
        before = learned.learned_fragments
        assert learned.joined_rows(query, aliases) == rows  # cache hit
        assert learned.learned_fragments == before

    def test_planner_accepts_injected_estimator(self, setup):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator)
        for record in records[:8]:
            plan = Planner(database,
                           cardinality_estimator=learned).plan(record.query)
            assert plan.num_nodes >= 2
        assert learned.learned_fragments > 0

    def test_query_cache_is_lru_bounded(self, setup):
        """A long-lived estimator must not pin every query it ever
        priced: the per-query fragment cache is LRU-bounded."""
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator,
                                              cached_queries=2)
        queries = [r.query for r in records[:4]]
        for query in queries:
            learned.joined_rows(query, frozenset(query.table_names))
        assert len(learned._cache) == 2
        # The most recent queries survive; the oldest were evicted.
        assert [entry[0] for entry in learned._cache.values()] == \
            queries[-2:]
        with pytest.raises(ModelError, match="positive"):
            LearnedCardinalityEstimator(database, estimator,
                                        cached_queries=0)

    def test_unknown_alias_still_rejected(self, setup):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator)
        with pytest.raises(OptimizerError, match="unknown aliases"):
            learned.joined_rows(records[0].query, frozenset({"nope"}))

    def test_model_without_cardinality_surface_rejected(self, setup):
        database, _, _ = setup
        with pytest.raises(ModelError, match="predict_cardinalities"):
            LearnedCardinalityEstimator(database, object())

    def test_core_model_accepted(self, setup):
        """A raw ZeroShotCostModel (not the estimator wrapper) works."""
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator.model)
        query = next(r.query for r in records if len(r.query.tables) >= 2)
        rows = learned.joined_rows(query, frozenset(query.table_names))
        wrapped = LearnedCardinalityEstimator(database, estimator)
        assert rows == wrapped.joined_rows(query,
                                           frozenset(query.table_names))


class TestFallback:
    def test_fallback_only_plans_identical_to_classical(self, setup):
        """When every fragment takes the heuristic path, the DP search
        must produce bit-identical plans — the acceptance property that
        learned == heuristic estimates imply identical plans."""
        database, records, estimator = setup
        fallback = LearnedCardinalityEstimator(database, estimator,
                                               fallback_only=True)
        for record in records[:12]:
            classical = Planner(database).plan(record.query)
            injected = Planner(
                database, cardinality_estimator=fallback).plan(record.query)
            assert _plan_shape(classical) == _plan_shape(injected)
            assert classical.total_cost == injected.total_cost
        assert fallback.learned_fragments == 0
        assert fallback.fallback_fragments > 0

    def test_erroring_model_falls_back_per_fragment(self, setup):
        database, records, estimator = setup

        class Exploding:
            # Core-model surface: predict_cardinalities(graphs).
            def predict_cardinalities(self, graphs):
                raise ModelError("no predictions today")

        broken = LearnedCardinalityEstimator(database, Exploding())
        for record in records[:6]:
            classical = Planner(database).plan(record.query)
            injected = Planner(
                database, cardinality_estimator=broken).plan(record.query)
            assert _plan_shape(classical) == _plan_shape(injected)
        assert broken.learned_fragments == 0
        assert broken.fallback_fragments > 0

    def test_disconnected_fragment_falls_back_to_heuristic(self, setup):
        database, records, estimator = setup
        query = next(r.query for r in records if len(r.query.tables) >= 3)
        learned = LearnedCardinalityEstimator(database, estimator)
        heuristic = CardinalityEstimator(database)
        # Find a disconnected pair (the DP never asks for one, but the
        # drop-in surface must still answer consistently).
        aliases = query.table_names
        from repro.optimizer.join_order import connected_subsets
        connected = set(connected_subsets(query))
        disconnected = None
        for a in aliases:
            for b in aliases:
                if a < b and frozenset({a, b}) not in connected:
                    disconnected = frozenset({a, b})
        if disconnected is None:
            pytest.skip("workload produced no disconnected pair")
        before = learned.fallback_fragments
        rows = learned.joined_rows(query, disconnected)
        assert rows == heuristic.joined_rows(query, disconnected)
        assert learned.fallback_fragments == before + 1


class TestPlanSelector:
    def test_selector_accepts_cardinality_estimator(self, setup, tiny_imdb):
        database, records, estimator = setup
        learned = LearnedCardinalityEstimator(database, estimator)
        plans = candidate_plans(database, records[0].query,
                                cardinality_estimator=learned)
        assert plans
        selector = ZeroShotPlanSelector(database, estimator,
                                        cardinality_estimator=learned)
        choice = selector.choose(records[0].query)
        assert choice.plan.num_nodes >= 1
        assert np.isfinite(choice.predicted_seconds)
