"""Legacy setup shim: this offline environment lacks the ``wheel`` package,
so PEP 660 editable installs fail; ``python setup.py develop`` still works."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro-cache = repro.experiments.cache:main",
            "repro-cardinality = repro.experiments.cardinality_exp:main",
            "repro-figure3 = repro.experiments.figure3:main",
            "repro-table1 = repro.experiments.table1:main",
            "repro-learning-curve = repro.experiments.learning_curve:main",
            "repro-fewshot = repro.experiments.fewshot_exp:main",
            "repro-ablations = repro.experiments.ablations:main",
            "repro-resources = repro.experiments.resources:main",
            "repro-hardware = repro.experiments.hardware:main",
            "repro-profile = repro.experiments.profile:main",
        ],
    },
)
