"""Zero-shot cardinality estimation: learn per-operator cardinalities
once, correct the optimizer on a database the model has never seen.

The paper names cardinality estimation as the next task for the
transferable plan representation ("beyond cost estimation").  This
example runs the whole loop:

1. collect executed workloads on a small training fleet — every record
   carries per-operator true cardinalities (``operator_cardinalities``),
2. train the multi-task cardinality head
   (``get_estimator("zero-shot-cardinality")``: runtime + per-operator
   log-cardinality losses over one message-passing trunk),
3. predict per-operator cardinalities for plans on an UNSEEN IMDB
   database and compare heuristic vs. learned Q-errors,
4. inject the learned estimates into the DP join enumerator via
   ``LearnedCardinalityEstimator`` and re-plan a query.

Run:  python examples/cardinality_estimation.py
"""

import numpy as np

from repro.db import generate_training_databases, make_imdb_database
from repro.models import TrainerConfig, get_estimator, q_error_stats
from repro.models.cardinality import record_cardinalities
from repro.optimizer import LearnedCardinalityEstimator, Planner
from repro.plans.plan import walk_plan
from repro.workload import (
    WorkloadRunner,
    collect_training_corpus,
    make_benchmark_workload,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Training fleet with per-operator cardinality labels.
    # ------------------------------------------------------------------
    print("Collecting training workloads (with per-operator labels) ...")
    fleet = generate_training_databases(4, base_seed=3,
                                        min_rows=500, max_rows=8_000)
    corpus = collect_training_corpus(fleet, queries_per_database=80, seed=3,
                                     random_indexes_per_database=1)
    print(f"  {corpus.num_queries} executed queries across "
          f"{corpus.num_databases} databases")

    # ------------------------------------------------------------------
    # 2. Train the multi-task cardinality head.
    # ------------------------------------------------------------------
    print("Training the zero-shot cardinality head ...")
    estimator = get_estimator("zero-shot-cardinality")
    estimator.fit(corpus.all_records(), corpus.databases,
                  TrainerConfig(epochs=40, batch_size=32))

    # ------------------------------------------------------------------
    # 3. Heuristic vs. learned per-operator Q-error on unseen IMDB.
    # ------------------------------------------------------------------
    print("Evaluating on the UNSEEN IMDB database ...")
    imdb = make_imdb_database(scale=0.15, seed=19)
    queries = make_benchmark_workload(imdb, "synthetic", 25, seed=5)
    records = WorkloadRunner(imdb, seed=5).run(queries)

    predicted = estimator.predict_cardinalities([r.plan for r in records],
                                                imdb)
    actual, heuristic, learned = [], [], []
    for record, cards in zip(records, predicted):
        actual.append(np.maximum(record_cardinalities(record), 1.0))
        heuristic.append(np.maximum(
            [n.est_rows for n in walk_plan(record.plan.root)], 1.0))
        learned.append(np.maximum(cards, 1.0))
    truth = np.concatenate(actual)
    print(f"  heuristic per-operator Q-error: "
          f"{q_error_stats(np.concatenate(heuristic), truth)}")
    print(f"  learned   per-operator Q-error: "
          f"{q_error_stats(np.concatenate(learned), truth)}")

    # ------------------------------------------------------------------
    # 4. Drive the DP join enumerator with learned cardinalities.
    # ------------------------------------------------------------------
    learned_optimizer = LearnedCardinalityEstimator(imdb, estimator)
    changed = 0
    for record in records[:10]:
        classical = Planner(imdb).plan(record.query)
        relearned = Planner(
            imdb, cardinality_estimator=learned_optimizer
        ).plan(record.query)
        if [n.label() for n in classical.nodes()] != \
                [n.label() for n in relearned.nodes()]:
            changed += 1
    print(f"\nDP planner with learned cardinalities: {changed}/10 plans "
          f"changed ({learned_optimizer.learned_fragments} fragments "
          f"priced by the model, "
          f"{learned_optimizer.fallback_fragments} heuristic fallbacks)")


if __name__ == "__main__":
    main()
