"""A tour of the database substrate: parse, plan, EXPLAIN, execute, simulate.

Shows the pieces the zero-shot models are built on — the same pipeline
the paper takes from PostgreSQL:

* SQL text -> query AST,
* cost-based planning (DP join ordering, index selection),
* EXPLAIN-style plan rendering with estimated vs actual cardinalities,
* vectorized execution (true cardinalities),
* runtime simulation (the "server"),
* what-if planning with a hypothetical index.

Run:  python examples/database_tour.py
"""

from repro.db import make_imdb_database
from repro.engine import execute_plan
from repro.optimizer import plan_query
from repro.optimizer.whatif import IndexSpec, WhatIfPlanner
from repro.plans import explain_plan
from repro.runtime import RuntimeSimulator
from repro.sql import parse_query

SQL = (
    "SELECT MIN(t.production_year) "
    "FROM movie_companies mc, title t "
    "WHERE t.id = mc.movie_id AND t.production_year > 1990 "
    "AND mc.company_type_id = 2;"
)


def main() -> None:
    print("Building the IMDB-shaped database ...")
    imdb = make_imdb_database(scale=0.3, seed=42)
    total = imdb.total_rows()
    print(f"  {len(imdb.schema.table_names)} tables, {total:,} rows, "
          f"{len(imdb.indexes)} indexes\n")

    print(f"Query (the paper's Figure 2 example):\n  {SQL}\n")
    query = parse_query(SQL)

    plan = plan_query(imdb, query)
    print("Optimizer plan (estimates only):")
    print(explain_plan(plan), "\n")

    result = execute_plan(imdb, plan)
    print(f"Result: MIN(t.production_year) = {result.scalar():.0f}\n")
    print("Plan after execution (EXPLAIN ANALYZE view):")
    print(explain_plan(plan), "\n")

    simulator = RuntimeSimulator(imdb, noise_sigma=0.0)
    runtime = simulator.simulate(plan)
    print(f"Simulated runtime: {runtime.total_seconds * 1e3:.2f} ms")
    print("Per-operator breakdown:")
    for node in plan.nodes():
        print(f"  {runtime.seconds_for(node) * 1e3:8.3f} ms  {node.label()}")

    print("\nWhat-if: how would the plan change with an index on "
          "title.production_year?")
    whatif = WhatIfPlanner(imdb)
    hypothetical = whatif.plan_with_indexes(
        query, [IndexSpec("title", "production_year")]
    )
    print(explain_plan(hypothetical))
    print(f"\noptimizer cost: {plan.total_cost:.1f} -> "
          f"{hypothetical.total_cost:.1f} with the hypothetical index")


if __name__ == "__main__":
    main()
