"""Quickstart: train a zero-shot cost model, predict on an unseen database.

The workflow mirrors the paper's Figure 1:

1. generate a fleet of training databases (stand-ins for the paper's 19
   public datasets),
2. run a random workload on each and log (plan, runtime) pairs,
3. train the zero-shot model through the unified estimator API
   (``get_estimator("zero-shot")``) on the transferable graph encoding,
4. predict runtimes for a database the model has NEVER seen — here an
   IMDB-shaped database — without executing a single training query on
   it, serving predictions through the batching/caching
   ``repro.serve.CostModelService``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.db import generate_training_databases, make_imdb_database
from repro.models import TrainerConfig, get_estimator, q_error_stats
from repro.serve import CostModelService
from repro.workload import (
    WorkloadRunner,
    collect_training_corpus,
    make_benchmark_workload,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1-2. Training fleet + one-time training-data collection.
    # ------------------------------------------------------------------
    print("Generating 5 training databases and collecting workloads ...")
    fleet = generate_training_databases(5, base_seed=1,
                                        min_rows=1_000, max_rows=20_000)
    corpus = collect_training_corpus(fleet, queries_per_database=120, seed=1,
                                     random_indexes_per_database=2)
    print(f"  collected {corpus.num_queries} executed queries "
          f"on {corpus.num_databases} databases")

    # ------------------------------------------------------------------
    # 3. Train the zero-shot estimator (estimated cardinalities: the
    #    deployable configuration — no execution needed at inference).
    #    The estimator owns its featurization: it consumes the executed
    #    records directly.
    # ------------------------------------------------------------------
    print("Training the zero-shot cost model ...")
    model = get_estimator("zero-shot")
    model.fit(corpus.all_records(), corpus.databases,
              TrainerConfig(epochs=50, batch_size=64))
    history = model.history
    print(f"  best validation loss {history.best_validation_loss:.3f} "
          f"(epoch {history.best_epoch})")

    # ------------------------------------------------------------------
    # 4. Zero-shot inference on the unseen IMDB database, served through
    #    the micro-batching prediction service.
    # ------------------------------------------------------------------
    print("Evaluating on the UNSEEN IMDB database (JOB-light workload) ...")
    imdb = make_imdb_database(scale=0.3, seed=42)
    queries = make_benchmark_workload(imdb, "job-light", 30, seed=7)
    records = WorkloadRunner(imdb, seed=7, noise_sigma=0.05).run(queries)

    service = CostModelService(model, imdb)
    predictions = service.predict_runtime([r.plan for r in records])
    truths = np.array([r.runtime_seconds for r in records])

    stats = q_error_stats(predictions, truths)
    print(f"\nZero-shot Q-errors on the unseen database: {stats}")
    print("\nSample predictions:")
    for record, predicted, truth in list(zip(records, predictions, truths))[:5]:
        print(f"  pred {predicted * 1e3:8.1f} ms   true {truth * 1e3:8.1f} ms"
              f"   | {str(record.query)[:70]}...")

    # The service also answers raw SQL (parsed + planned internally) and
    # caches per-plan featurization under an LRU bound.
    sql = "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000"
    print(f"\nService prediction for ad-hoc SQL: "
          f"{service.predict_runtime([sql])[0] * 1e3:.1f} ms  "
          f"(cache hit rate so far: {service.stats.hit_rate:.0%})")


if __name__ == "__main__":
    main()
