"""Few-shot adaptation (paper Sections 1 and 4.3).

Compares three ways to get a cost model for a new database:

* **zero-shot** — use the fleet-trained model out of the box,
* **few-shot** — fine-tune it with a handful of queries from the new
  database,
* **from scratch** — train a workload-driven model (E2E) on the same
  handful.

The point of the paper: few-shot needs far fewer queries than training
from scratch, because system behaviour is already internalized.

Run:  python examples/few_shot.py
"""

import numpy as np

from repro.db import generate_training_databases, make_imdb_database
from repro.models import TrainerConfig, get_estimator, q_error_stats
from repro.workload import (
    WorkloadRunner,
    WorkloadSpec,
    collect_training_corpus,
    generate_workload,
    make_benchmark_workload,
)


def main() -> None:
    print("One-time effort: train the zero-shot model on 5 databases ...")
    fleet = generate_training_databases(5, base_seed=5,
                                        min_rows=1_000, max_rows=20_000)
    corpus = collect_training_corpus(fleet, queries_per_database=120, seed=5)
    model = get_estimator("zero-shot")
    model.fit(corpus.all_records(), corpus.databases,
              TrainerConfig(epochs=50, batch_size=64))

    imdb = make_imdb_database(scale=0.3, seed=42)

    # A small adaptation workload executed on the new database.
    support_queries = generate_workload(imdb, WorkloadSpec(num_queries=40,
                                                           seed=31))
    support = WorkloadRunner(imdb, seed=31).run(support_queries)

    # Evaluation workload.
    eval_queries = make_benchmark_workload(imdb, "scale", 30, seed=77)
    evaluation = WorkloadRunner(imdb, seed=77, noise_sigma=0.05) \
        .run(eval_queries)
    eval_plans = [r.plan for r in evaluation]
    truths = np.array([r.runtime_seconds for r in evaluation])

    print("\n1. Zero-shot (0 queries on the new database):")
    print("  ", q_error_stats(model.predict_runtime(eval_plans, imdb),
                              truths))

    print("\n2. Few-shot (fine-tuned on 40 queries):")
    tuned = model.fine_tune(support, imdb)
    print("  ", q_error_stats(tuned.predict_runtime(eval_plans, imdb),
                              truths))

    print("\n3. Workload-driven E2E trained from scratch on the same 40:")
    e2e = get_estimator("e2e")
    e2e.fit(support, imdb, TrainerConfig(epochs=50, batch_size=8))
    # Out-of-vocabulary evaluation plans are priced at the training
    # median by the estimator's adapter.
    print("  ", q_error_stats(e2e.predict_runtime(eval_plans, imdb), truths))


if __name__ == "__main__":
    main()
