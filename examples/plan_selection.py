"""Zero-shot plan selection (paper Section 4.2, the naïve approach).

The classical optimizer picks plans with an analytic cost model whose
assumptions (no caching effects, coarse CPU accounting) are sometimes
wrong.  Here a zero-shot cost model — trained on other databases —
evaluates a Bao-style portfolio of candidate plans per query and picks
the one with the lowest *predicted runtime*, on a database it has never
seen.  We then measure both choices against the simulated ground truth.

Run:  python examples/plan_selection.py
"""

from repro.db import generate_training_databases, make_imdb_database
from repro.engine import Executor
from repro.models import TrainerConfig, get_estimator
from repro.optimizer.learned_planner import ZeroShotPlanSelector
from repro.runtime import RuntimeSimulator
from repro.workload import collect_training_corpus, make_benchmark_workload


def main() -> None:
    print("Training the zero-shot model on 6 databases ...")
    fleet = generate_training_databases(6, base_seed=8,
                                        min_rows=1_000, max_rows=40_000)
    corpus = collect_training_corpus(fleet, queries_per_database=130, seed=8,
                                     random_indexes_per_database=2)
    model = get_estimator("zero-shot")
    model.fit(corpus.all_records(), corpus.databases,
              TrainerConfig(epochs=50, batch_size=64))

    imdb = make_imdb_database(scale=0.4, seed=42)
    queries = make_benchmark_workload(imdb, "scale", 20, seed=13)
    # service=True: candidate plans are priced through the batching
    # CostModelService (identical choices — inference is batch-size
    # invariant).
    selector = ZeroShotPlanSelector(imdb, model, service=True)
    executor = Executor(imdb)
    simulator = RuntimeSimulator(imdb, noise_sigma=0.0)

    chosen_total = 0.0
    classical_total = 0.0
    changed = 0
    print("\nSelecting plans for 20 queries on the unseen IMDB database ...")
    for query in queries:
        choice = selector.choose(query)
        runtimes = {}
        for label, plan in (("chosen", choice.plan),
                            ("classical", choice.classical_plan)):
            plan.reset_actuals()
            executor.execute(plan)
            runtimes[label] = simulator.simulate(plan).total_seconds
        chosen_total += runtimes["chosen"]
        classical_total += runtimes["classical"]
        if not choice.agrees_with_classical:
            changed += 1
            delta = runtimes["classical"] - runtimes["chosen"]
            print(f"  changed plan ({choice.num_candidates} candidates): "
                  f"{delta * 1e3:+.1f} ms vs classical")

    print(f"\n{changed}/{len(queries)} plans changed by the learned selector")
    print(f"workload runtime, classical optimizer: {classical_total * 1e3:.1f} ms")
    print(f"workload runtime, zero-shot selection: {chosen_total * 1e3:.1f} ms")
    if chosen_total < classical_total:
        print(f"-> {classical_total / chosen_total:.2f}x faster end to end")


if __name__ == "__main__":
    main()
