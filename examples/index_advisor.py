"""Zero-shot index advisor (paper Section 4.1).

Trains a zero-shot cost model on databases with random physical designs,
then recommends indexes for a workload on the UNSEEN IMDB database using
What-If planning — hypothetical indexes are registered, queries are
re-planned, and the model predicts the hypothetical runtimes.  No
training query ever runs on the target database.

Run:  python examples/index_advisor.py
"""

from repro.db import generate_training_databases, make_imdb_database
from repro.models import TrainerConfig, get_estimator
from repro.sql import parse_query
from repro.tuning import IndexAdvisor
from repro.workload import WorkloadRunner, collect_training_corpus

TARGET_WORKLOAD = [
    # Selective scans that an index would accelerate dramatically.
    "SELECT COUNT(*) FROM title t WHERE t.votes > 1500000",
    "SELECT COUNT(*) FROM title t WHERE t.votes > 900000 "
    "AND t.production_year > 2018",
    "SELECT MIN(t.production_year) FROM title t, movie_keyword mk "
    "WHERE t.id = mk.movie_id AND mk.keyword_id = 17",
    # A query indexes will not help much (unselective).
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1950",
]


def main() -> None:
    print("Training a zero-shot model on databases with random indexes ...")
    fleet = generate_training_databases(5, base_seed=3,
                                        min_rows=1_000, max_rows=20_000)
    corpus = collect_training_corpus(fleet, queries_per_database=120, seed=3,
                                     random_indexes_per_database=3)
    model = get_estimator("zero-shot")
    model.fit(corpus.all_records(), corpus.databases,
              TrainerConfig(epochs=50, batch_size=64))

    imdb = make_imdb_database(scale=0.3, seed=42)
    queries = [parse_query(text) for text in TARGET_WORKLOAD]

    print("\nRecommending indexes for the unseen IMDB workload ...")
    advisor = IndexAdvisor(imdb, model, service=True)
    recommendation = advisor.recommend(queries, max_indexes=2)

    print(f"  predicted workload time without new indexes: "
          f"{recommendation.baseline_seconds * 1e3:.1f} ms")
    print(f"  predicted workload time with recommendation:  "
          f"{recommendation.predicted_seconds * 1e3:.1f} ms "
          f"({recommendation.predicted_speedup:.2f}x)")
    for spec in recommendation.indexes:
        print(f"  -> CREATE INDEX ON {spec.table_name}({spec.column_name})")

    # Validate the recommendation by actually building the indexes.
    print("\nValidating against the simulated ground truth ...")
    runner = WorkloadRunner(imdb, seed=11, noise_sigma=0.0)
    before = sum(r.runtime_seconds for r in runner.run(queries))
    for number, spec in enumerate(recommendation.indexes):
        imdb.create_index(f"advised_{number}", spec.table_name,
                          spec.column_name)
    imdb.analyze()
    runner_after = WorkloadRunner(imdb, seed=11, noise_sigma=0.0)
    after = sum(r.runtime_seconds for r in runner_after.run(queries))
    print(f"  true workload time before: {before * 1e3:.1f} ms")
    print(f"  true workload time after:  {after * 1e3:.1f} ms "
          f"({before / max(after, 1e-12):.2f}x speedup)")


if __name__ == "__main__":
    main()
